// Versioned estimate store with a lock-free read path.
//
// One writer (the engine's window-completion hook) publishes immutable
// EstimateSnapshots under monotonically increasing versions; any number
// of readers query them with zero locks and without ever stalling the
// writer.  The design is a seqlock/RCU hybrid over a fixed ring of
// `retention` slots:
//
//   * Each slot carries an atomic {version, pointer} pair written
//     seqlock-style: version <- 0 (invalidate), pointer <- snapshot,
//     version <- v, all with release ordering.  A reader loads
//     version / pointer / version with acquire ordering and accepts the
//     slot only if both version loads equal the version it wants —
//     versions are strictly monotone per slot (v, v+K, v+2K, ...), so
//     an ABA swap is impossible and a torn {version, pointer} pair can
//     never validate.
//   * Lifetime is hazard-pointer style: a reader announces the version
//     it is pinning in its Reader handle, executes a seq_cst fence, and
//     re-checks the store's reclaim floor.  The writer advances the
//     floor, executes the matching seq_cst fence, and only frees
//     retained snapshots below both the floor and every announced pin
//     (the Dekker store/load pattern: at least one side always sees the
//     other).  The writer NEVER waits — a pinned old snapshot just
//     defers its reclamation to a later publish (writer_waits() == 0 is
//     a bench gate).
//   * Once validated, the reader mints a shared_ptr from the pinned raw
//     pointer (enable_shared_from_this) and drops the pin: from then on
//     ordinary shared ownership keeps the snapshot alive for as long as
//     the reader holds the SnapshotRef, entirely decoupled from the
//     ring.
//
// Memory orders are documented per-site in src/engine/THREADING.md
// ("Serving layer" rows) and enforced explicit by the memory-order
// lint.  Multiple writers are tolerated (publishes serialize on a
// writer mutex); readers are registered Reader handles, each usable by
// one thread at a time.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "serve/query.hpp"
#include "serve/snapshot.hpp"

namespace tme::serve {

struct StoreOptions {
    /// Published versions kept queryable (>= 2).  Version v retires
    /// when version v + retention is published.
    std::size_t retention = 8;
    /// Maximum concurrently registered Reader handles.  Fixed at
    /// construction so the writer's pin scan is a bounded array walk.
    std::size_t max_readers = 64;
};

/// A version-stamped reference to one published snapshot.  Plain shared
/// ownership: holding it keeps the snapshot alive indefinitely without
/// blocking the writer or retention.
struct SnapshotRef {
    std::uint64_t version = 0;
    std::shared_ptr<const EstimateSnapshot> snapshot;

    explicit operator bool() const { return snapshot != nullptr; }
    const EstimateSnapshot* operator->() const { return snapshot.get(); }
    const EstimateSnapshot& operator*() const { return *snapshot; }
};

class Reader;

class EstimateStore {
  public:
    explicit EstimateStore(StoreOptions options = {});
    ~EstimateStore();

    EstimateStore(const EstimateStore&) = delete;
    EstimateStore& operator=(const EstimateStore&) = delete;

    /// Publishes `snap` as the next version and returns it.  Freezes
    /// the snapshot (assigns the version, seals the checksum), swaps it
    /// into the ring with release ordering, then reclaims snapshots
    /// below the retention floor that no reader has pinned.  Never
    /// blocks on readers; concurrent publishers serialize on an
    /// internal mutex.
    std::uint64_t publish(EstimateSnapshot snap);

    /// Newest published version (0 while empty).  Safe from any thread.
    std::uint64_t head_version() const {
        return head_.load(std::memory_order_acquire);
    }
    /// Oldest version still guaranteed queryable (reclaim floor).
    std::uint64_t floor_version() const {
        return floor_.load(std::memory_order_acquire);
    }

    std::size_t retention() const { return retention_; }
    std::size_t max_readers() const { return handles_.size(); }

    // -- Telemetry -----------------------------------------------------
    /// Snapshots currently owned by the store's retention buffer.
    std::size_t retained_count() const;
    /// Publishes whose reclamation was deferred by a concurrent pin
    /// (the snapshot was freed on a later publish instead).
    std::uint64_t reclaim_deferred() const {
        return reclaim_deferred_.load(std::memory_order_relaxed);
    }
    /// Times the writer blocked on a reader.  Structurally zero — the
    /// protocol has no such wait — and gated at zero by the bench.
    std::uint64_t writer_waits() const { return 0; }
    obs::HistogramSnapshot publish_latency() const {
        return publish_latency_.snapshot();
    }
    /// Store metadata + publish-latency summary as JSON (no snapshot
    /// payloads).
    obs::Json to_json() const;

  private:
    friend class Reader;

    /// One ring slot: a seqlock-protected {version, snapshot*} pair.
    /// version == 0 means "mid-swap, do not trust the pointer".
    struct Slot {
        std::atomic<std::uint64_t> version{0};
        std::atomic<const EstimateSnapshot*> ptr{nullptr};
    };
    /// One registered reader's hazard state.  `active` holds the
    /// version the reader is validating right now (0 = no pin).
    struct Handle {
        std::atomic<bool> claimed{false};
        std::atomic<std::uint64_t> active{0};
    };

    std::size_t retention_;
    std::vector<Slot> slots_;      // indexed by version % retention_
    std::vector<Handle> handles_;  // fixed; scanned by the writer
    std::atomic<std::uint64_t> head_{0};
    std::atomic<std::uint64_t> floor_{1};

    /// Serializes publishers (and the retained_count() telemetry
    /// probe), never readers.
    mutable std::mutex writer_mutex_;
    /// Writer-owned ownership of live snapshots, oldest first.  Readers
    /// never touch this — they reach snapshots through the slots.
    std::deque<std::shared_ptr<const EstimateSnapshot>> retained_;

    std::atomic<std::uint64_t> reclaim_deferred_{0};
    obs::LatencyHistogram publish_latency_;
};

/// A registered read handle: the hazard-pointer slot readers pin
/// versions through.  Construct one per reader thread (a Reader is NOT
/// thread-safe; the store supports max_readers of them concurrently).
/// Destroying the Reader releases its handle for reuse.
///
/// All query methods are lock-free and never block the writer.
class Reader {
  public:
    /// Claims a handle; throws std::runtime_error when max_readers
    /// handles are already claimed.
    explicit Reader(EstimateStore& store);
    ~Reader();

    Reader(const Reader&) = delete;
    Reader& operator=(const Reader&) = delete;

    /// The newest published snapshot.  empty_store while none exists;
    /// otherwise always succeeds (retries internally if the head
    /// advances mid-validation).
    QueryResult<SnapshotRef> latest();

    /// The snapshot published as `version`.  version_unknown above the
    /// head or zero; version_retired below the retention window.
    QueryResult<SnapshotRef> at(std::uint64_t version);

    /// Every retained snapshot whose window overlaps the inclusive
    /// sample range [sample_lo, sample_hi], oldest first.  A snapshot
    /// that retires mid-scan is skipped (it was outside the guarantee).
    QueryResult<std::vector<SnapshotRef>> window_range(
        std::size_t sample_lo, std::size_t sample_hi);

    /// Point lookup across time: `pair`'s estimate under `m` in every
    /// retained window overlapping [sample_lo, sample_hi].  Typed
    /// errors from the per-snapshot lookups propagate.
    struct PointSample {
        std::uint64_t version = 0;
        std::size_t window_start_sample = 0;
        std::size_t window_end_sample = 0;
        double value = 0.0;
    };
    QueryResult<std::vector<PointSample>> point_series(
        engine::Method m, std::size_t pair, std::size_t sample_lo,
        std::size_t sample_hi);

    /// Elementwise estimate delta between two retained versions
    /// (newer - older).
    QueryResult<linalg::Vector> version_delta(engine::Method m,
                                              std::uint64_t older_version,
                                              std::uint64_t newer_version);

  private:
    /// Seqlock + hazard-pin acquisition of one version.  ok, or
    /// version_retired when the slot moved on, or version_unknown /
    /// empty_store for out-of-range requests.
    QueryResult<SnapshotRef> acquire(std::uint64_t version);

    EstimateStore* store_;
    EstimateStore::Handle* handle_;
};

}  // namespace tme::serve
