// Fanout estimation from a time series of link loads (paper Section
// 4.2.4 — the paper's novel method).
//
// Assume fanouts are constant over the window (all load fluctuation comes
// from per-source total traffic changes; Section 5.2.2 shows this is a
// good model for large sources).  With S[k] = diag of per-source totals
// applied to pairs, solve
//
//     minimize    sum_k || R S[k] a - t[k] ||^2
//     subject to  sum_m a_nm = 1  for every source n,    a >= 0.
//
// The per-source totals te(n)[k] are read from the ingress edge-link rows
// of t[k] itself, so the method needs nothing beyond (R, t[k]).  The
// window makes the system overdetermined for K >= 3 even when R is rank
// deficient (paper Fig. 10); accuracy saturates quickly with K (Fig. 11).
#pragma once

#include <cstdint>

#include "core/problem.hpp"
#include "linalg/qp.hpp"

namespace tme::core {

/// The fanout QP's equality-constraint structure: per source, fanouts
/// sum to one.  It depends only on the topology's pair enumeration (one
/// row per source PoP, E(src(p), p) = 1), so the online engine builds
/// it once per routing epoch and shares it across windows.  Held in
/// CSR form only (one nonzero per column) — the factored QP iterates
/// E's nonzeros directly, and the historical dense N x P copy (63 MB
/// per epoch at 200 PoPs) bought nothing.
struct FanoutConstraints {
    std::vector<std::size_t> source_of;  ///< pair -> source PoP
    /// E in CSR form (pops x pairs, one nonzero per column).
    linalg::SparseMatrix equality_sparse;
    linalg::Vector rhs;                  ///< all-ones right-hand side

    static FanoutConstraints build(const topology::Topology& topo);
};

/// Precomputed sliding-window aggregates for fanout_estimate.  The online
/// engine maintains these incrementally (rank-one add/downdate per
/// sample), which turns the per-window O(K P^2) data-term accumulation
/// into O(P^2).  All three must be supplied together; none are owned.
struct FanoutWindowAggregates {
    /// sum_k te_k te_k' (nodes x nodes), te_k[n] = ingress edge-link
    /// load of source n at sample k.  The pair-space weighting matrix
    /// sum_k w_k w_k' is its lift w_k[p] = te_k[src(p)].
    const linalg::Matrix* source_outer = nullptr;
    /// sum_k w_k .* (R' t[k]) (pair-indexed).
    const linalg::Vector* weighted_rhs = nullptr;
    /// Mean load vector over the window (length = link count).
    const linalg::Vector* mean_loads = nullptr;

    bool complete() const {
        return source_outer != nullptr && weighted_rhs != nullptr &&
               mean_loads != nullptr;
    }
    bool empty() const {
        return source_outer == nullptr && weighted_rhs == nullptr &&
               mean_loads == nullptr;
    }
};

struct FanoutOptions {
    /// Weight (relative to the data term's diagonal) of a weak Tikhonov
    /// pull toward the gravity fanouts computed from the window's mean
    /// edge loads.  The LS system identifies fanouts only up to the
    /// directions excited by differential per-source total variation;
    /// when the busy-hour totals are nearly flat those directions are
    /// data-starved, and this term selects the gravity-consistent
    /// solution among the near-optimal ones instead of an arbitrary
    /// vertex.  Set to 0 for the paper's pure formulation.
    double gravity_tiebreak_weight = 1e-3;
    /// Optional precomputed sparse Gram R'R in CSR form (e.g. the
    /// engine's per-epoch RoutingEpoch::sparse_gram()); MUST equal
    /// gram_sparse_csr(*problem.routing).  The estimator's data term
    /// is this structure with per-entry source weights — nothing
    /// quadratic in the pair count is ever allocated, dense or
    /// otherwise.  Not owned.
    const linalg::SparseMatrix* shared_sparse_gram = nullptr;
    /// Optional precomputed equality-constraint structure; MUST equal
    /// FanoutConstraints::build(*problem.topo).  Not owned.
    const FanoutConstraints* shared_constraints = nullptr;
    /// Gram-free solve: not even the CSR Gram R'R is built.  The QP's
    /// data term H = sum_k W_k (R'R) W_k is supplied as an operator —
    /// applies run per window sample through R and R' (O(nnz * window)
    /// per product), and KKT rows are generated on demand as
    /// source-weighted Gram columns (linalg::gram_column).  The
    /// generated values replay the weighted-CSR assembly bit-for-bit,
    /// so exact-LU-regime solves match the factored path exactly; the
    /// projected-CG regime agrees to solver precision.  When set,
    /// shared_sparse_gram is ignored.
    bool operator_form = false;
    /// Optional precomputed CSR transpose of the routing matrix; MUST
    /// equal linalg::transpose(*problem.routing).  Only read by the
    /// operator_form path (the engine caches it per routing epoch);
    /// derived on the fly when absent.  Not owned.
    const linalg::SparseMatrix* shared_routing_transpose = nullptr;
    /// Optional QP active-set warm start: the previous window's fanout
    /// vector (pair-indexed).  The QP verifies the seed's KKT
    /// feasibility and falls back to a cold solve when it is
    /// inconsistent, so the estimate never depends on the seed.  Not
    /// owned.
    const linalg::Vector* warm_start = nullptr;
    /// Optional incremental window aggregates (see above).
    FanoutWindowAggregates aggregates;
    /// Tuning knobs forwarded to the factored QP solve
    /// (dense-gather limit, projected-CG tolerance/cap).  The
    /// warm_start and equality_operator members are ignored — the
    /// estimator manages those itself.
    linalg::EqQpNonnegOptions qp;
};

struct FanoutResult {
    linalg::Vector fanouts;          ///< alpha, pair-indexed
    /// Estimated demands averaged over the window:
    /// mean_k alpha_p * te(src(p))[k].
    linalg::Vector mean_demands;
    double equality_violation = 0.0; ///< worst |sum_m a_nm - 1|
    std::size_t qp_iterations = 0;   ///< KKT solves the QP performed
    /// Projected-CG iterations across those solves (0 when every KKT
    /// system fit the dense-gather path; see EqQpNonnegResult).
    std::size_t qp_cg_iterations = 0;
    /// True when the warm-start seed passed KKT verification (no cold
    /// fall-back); feed `fanouts` into the next window's warm_start.
    bool warm_accepted = false;
};

/// Estimates constant fanouts over the window.
FanoutResult fanout_estimate(const SeriesProblem& problem,
                             const FanoutOptions& options = {});

/// Demands implied by fanouts at a single snapshot (using its edge-link
/// loads for the per-source totals).
linalg::Vector demands_from_fanout_snapshot(const SnapshotProblem& problem,
                                            const linalg::Vector& fanouts);

}  // namespace tme::core
