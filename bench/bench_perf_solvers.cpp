// Solver-kernel perf bench and regression gate: the sparse-aware /
// blocked numerical stack against the naive dense path it replaced.
//
// Three phases, each of which FAILS the bench (non-zero exit) when a
// gate is missed:
//
//  1. Dense kernels.  Register-blocked gemm must be bit-for-bit the
//     naive triple loop; the blocked Cholesky must match the unblocked
//     factor to 1e-12 (relative) and beat it by >= 1.5x at n >= 1000.
//
//  2. Scaling (generated backbones, 25 -> 100 -> 200 PoPs).  Sparse
//     routing-matrix products vs their densified counterparts, and the
//     Gram constructions: the sparse accumulations must agree with
//     densify-then-gram exactly, and the CSR Gram representation
//     (gram_sparse_csr) must be >= 3x faster at >= 100 PoPs than the
//     dense construction this PR replaced (densify + the naive rank-1
//     kernel with its eager zero-fill).  At 200 PoPs (39800 pairs) the
//     dense P x P Gram would be ~12.7 GB — there the CSR form is the
//     only Gram that can be built at all, and it is.
//
//  3. Paper-scale equivalence (Europe / USA scenarios).  The fast paths
//     must reproduce the pre-PR dense-path estimates: sparse vs
//     densified Gram bitwise, the Bayesian estimator's virtual-shift +
//     sparse-gradient solve vs the historical copy-shift-dense solve to
//     1e-9, and Vardi's shared transformed Gram vs its self-derived one
//     to 1e-9.  (The QP's sparse-E path is pinned bitwise against the
//     dense path in tests/linalg/test_blocked_kernels.cpp.)  The
//     Gram-free operator forms are gated bitwise here: operator Vardi
//     (on-demand transformed-Gram columns) against the dense path, and
//     operator Bayesian (factored passive-set NNLS over on-demand Gram
//     columns) against the dense NNLS path.
//
//  4. Projection / QP hot paths.  The sparse-aware Kruithof rewrite
//     must beat the pre-PR loop >= 3x at 100 PoPs and agree to 1e-9;
//     the flat IPF must be bit-for-bit the TrafficMatrix sweep; the
//     operator-form entropy loop must be bit-for-bit the pre-PR solver
//     and finish a 9900-pair window inside a wall-clock budget; and the
//     factored fanout QP must reproduce the pre-PR dense-Hessian
//     estimates on Europe/USA to 1e-9.
//
//  5. 200-PoP generated backbone.  Gravity, Kruithof, entropy,
//     Bayesian (factored QP) and fanout (factored QP) all complete a
//     window, and the peak dense Matrix allocation stays orders of
//     magnitude below the 12.7 GB pairs^2 Hessian/Gram that the
//     factored paths eliminated.  Vardi joins through its operator
//     form — the first scale at which the method exists at all (its
//     dense transformed Gram would be those same 12.7 GB) — and a
//     warm start from the cold solution must verify and return the
//     same estimate to 1e-9.
//
//  7. 500-PoP Gram-free window (phase 6 is the contract-layer gate).
//     Gravity, Kruithof, entropy, Bayesian (operator QP) and fanout
//     (operator QP) complete a window at 249500 pairs with no
//     pairs x pairs structure — dense or CSR — ever materialized
//     (peak dense Matrix allocation < 10 MB), and the engine
//     scheduler's default schedule finishes a full window without
//     triggering the epoch's sparse or dense Gram.
//
// Results land in BENCH_solvers.json next to BENCH_engine.json so the
// perf trajectory stays machine-readable across PRs.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "check/contract.hpp"
#include "core/bayesian.hpp"
#include "core/entropy.hpp"
#include "core/fanout.hpp"
#include "core/gravity.hpp"
#include "core/kruithof.hpp"
#include "core/vardi.hpp"
#include "engine/epoch_cache.hpp"
#include "engine/method.hpp"
#include "engine/scheduler.hpp"
#include "engine/window.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/entropy_solver.hpp"
#include "linalg/matrix.hpp"
#include "linalg/nnls.hpp"
#include "linalg/qp.hpp"
#include "linalg/sparse.hpp"
#include "obs/report.hpp"
#include "routing/routing_matrix.hpp"
#include "scenario/scenario.hpp"
#include "topology/builders.hpp"
#include "traffic/traffic_matrix.hpp"

namespace {

using namespace tme;
using Clock = std::chrono::steady_clock;

bool g_ok = true;

template <typename... Args>
void fail(const char* fmt, Args... args) {
    std::printf("FAIL: ");
    std::printf(fmt, args...);
    std::printf("\n");
    g_ok = false;
}

/// Best-of-`reps` wall time of `fn` in seconds.
template <typename Fn>
double time_best(std::size_t reps, Fn&& fn) {
    double best = 1e300;
    for (std::size_t r = 0; r < reps; ++r) {
        const Clock::time_point t0 = Clock::now();
        fn();
        const double s =
            std::chrono::duration<double>(Clock::now() - t0).count();
        best = std::min(best, s);
    }
    return best;
}

double vec_max_abs_diff(const linalg::Vector& a, const linalg::Vector& b) {
    double worst = a.size() == b.size() ? 0.0 : 1e300;
    for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
        worst = std::max(worst, std::abs(a[i] - b[i]));
    }
    return worst;
}

bool vec_bitwise(const linalg::Vector& a, const linalg::Vector& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i]) return false;
    }
    return true;
}

/// The naive dense Gram the blocked kernel replaced (reference —
/// per-row rank-1 updates plus a column-strided mirror pass).  The
/// pre-PR Matrix constructor zero-filled its storage eagerly; that
/// write is reproduced here so the reference prices the construction
/// as it actually was.
linalg::Matrix gram_reference(const linalg::Matrix& a) {
    const std::size_t n = a.cols();
    linalg::Matrix g(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        std::fill_n(g.row_data(i), n, 0.0);
    }
    for (std::size_t i = 0; i < a.rows(); ++i) {
        const double* row = a.row_data(i);
        for (std::size_t p = 0; p < n; ++p) {
            const double rp = row[p];
            if (rp == 0.0) continue;
            double* grow = g.row_data(p);
            for (std::size_t q = p; q < n; ++q) grow[q] += rp * row[q];
        }
    }
    for (std::size_t p = 0; p < n; ++p) {
        for (std::size_t q = 0; q < p; ++q) g(p, q) = g(q, p);
    }
    return g;
}

/// The naive i-k-j gemm the blocked kernel replaced (reference).
linalg::Matrix gemm_reference(const linalg::Matrix& a,
                              const linalg::Matrix& b) {
    linalg::Matrix c(a.rows(), b.cols(), 0.0);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        const double* arow = a.row_data(i);
        double* crow = c.row_data(i);
        for (std::size_t k = 0; k < a.cols(); ++k) {
            const double aik = arow[k];
            if (aik == 0.0) continue;
            const double* brow = b.row_data(k);
            for (std::size_t j = 0; j < b.cols(); ++j) {
                crow[j] += aik * brow[j];
            }
        }
    }
    return c;
}

linalg::Matrix random_matrix(std::size_t rows, std::size_t cols,
                             unsigned seed) {
    linalg::Matrix m(rows, cols);
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t j = 0; j < cols; ++j) m(i, j) = dist(rng);
    }
    return m;
}

linalg::Matrix random_spd(std::size_t n, unsigned seed) {
    const linalg::Matrix b = random_matrix(n, n, seed);
    linalg::Matrix a = linalg::gram(b);
    for (std::size_t i = 0; i < n; ++i) {
        a(i, i) += static_cast<double>(n);
    }
    return a;
}

struct CholeskyPoint {
    std::size_t n = 0;
    double unblocked_seconds = 0.0;
    double blocked_seconds = 0.0;
    double speedup = 0.0;
    double max_factor_diff = 0.0;
};

struct ScalePoint {
    std::size_t pops = 0;
    std::size_t links = 0;
    std::size_t pairs = 0;
    std::size_t nonzeros = 0;
    double routing_build_seconds = 0.0;
    double gemv_dense_seconds = 0.0;
    double gemv_sparse_seconds = 0.0;
    double gemv_t_dense_seconds = 0.0;
    double gemv_t_sparse_seconds = 0.0;
    double gram_dense_seconds = 0.0;      // densify + blocked dense gram
    double gram_reference_seconds = 0.0;  // densify + pre-PR naive gram
    double gram_sparse_seconds = 0.0;     // sparse accumulate, dense out
    double gram_csr_seconds = 0.0;        // Gustavson, CSR out
    std::size_t gram_csr_nnz = 0;
    double gram_speedup = 0.0;          // CSR form vs dense construction
    double gram_speedup_dense_out = 0.0;  // dense-out sparse vs naive
    bool gram_measured = false;
    bool gram_exact = false;
};

/// Pre-PR Bayesian estimate: materialized shifted Gram copy + dense
/// dual refresh (the path core::bayesian_estimate used before the
/// sparse-operator solve).
linalg::Vector bayesian_reference(const core::SnapshotProblem& problem,
                                  const linalg::Vector& prior,
                                  double regularization) {
    const linalg::SparseMatrix& r = *problem.routing;
    const double w = 1.0 / regularization;
    linalg::Matrix g = linalg::gram(r.to_dense());
    for (std::size_t i = 0; i < g.rows(); ++i) g(i, i) += w;
    linalg::Vector rhs = r.multiply_transpose(problem.loads);
    for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] += w * prior[i];
    return linalg::nnls_gram(g, rhs).x;
}

/// Pre-PR kruithof_general, verbatim: per-row prediction re-scan, an
/// unconditional std::pow per nonzero, and a full R s re-multiply per
/// sweep just for the convergence check.
core::KruithofResult kruithof_general_reference(
    const core::SnapshotProblem& problem, const linalg::Vector& prior,
    const core::KruithofOptions& options) {
    const linalg::SparseMatrix& r = *problem.routing;
    const linalg::Vector& t = problem.loads;
    double tmax = linalg::nrm_inf(t);
    if (tmax == 0.0) tmax = 1.0;

    core::KruithofResult result;
    result.s = prior;
    double pmean =
        linalg::sum(result.s) / static_cast<double>(result.s.size());
    for (double& v : result.s) v = std::max(v, 1e-12 * pmean);

    const auto& offsets = r.row_offsets();
    const auto& cols = r.column_indices();
    const auto& vals = r.values();
    for (result.iterations = 0; result.iterations < options.max_iterations;
         ++result.iterations) {
        for (std::size_t l = 0; l < r.rows(); ++l) {
            double pred = 0.0;
            for (std::size_t k = offsets[l]; k < offsets[l + 1]; ++k) {
                pred += vals[k] * result.s[cols[k]];
            }
            if (pred <= 0.0) continue;
            if (t[l] <= 0.0) {
                for (std::size_t k = offsets[l]; k < offsets[l + 1]; ++k) {
                    result.s[cols[k]] = 0.0;
                }
                continue;
            }
            const double ratio = t[l] / pred;
            for (std::size_t k = offsets[l]; k < offsets[l + 1]; ++k) {
                result.s[cols[k]] *= std::pow(ratio, vals[k]);
            }
        }
        const linalg::Vector pred = r.multiply(result.s);
        double viol = 0.0;
        for (std::size_t l = 0; l < t.size(); ++l) {
            viol = std::max(viol, std::abs(pred[l] - t[l]) / tmax);
        }
        result.max_violation = viol;
        if (viol <= options.tolerance) {
            result.converged = true;
            break;
        }
    }
    return result;
}

/// Pre-PR entropy solver, verbatim: allocating objective evaluation
/// plus a forward re-multiply per iteration.
linalg::EntropySolverResult entropy_reference(
    const linalg::SparseMatrix& a, const linalg::Vector& b,
    const linalg::Vector& prior, double w,
    const linalg::EntropySolverOptions& options) {
    using linalg::Vector;
    const std::size_t n = a.cols();
    Vector p = prior;
    double pmean = 0.0;
    for (double v : p) pmean += std::max(v, 0.0);
    pmean = (pmean > 0.0 ? pmean / static_cast<double>(n) : 1.0);
    const double floor = options.prior_floor * pmean;
    for (double& v : p) v = std::max(v, floor);

    const auto objective = [&](const Vector& s) {
        const Vector r = linalg::sub(a.multiply(s), b);
        return linalg::dot(r, r) +
               (w > 0.0 ? w * linalg::generalized_kl(s, p) : 0.0);
    };

    linalg::EntropySolverResult result;
    result.s = p;
    double bscale = linalg::nrm_inf(b);
    if (bscale == 0.0) bscale = 1.0;
    const double grad_scale = std::max(1.0, bscale * bscale);
    double f = objective(result.s);
    double eta = options.initial_step;
    for (result.iterations = 0; result.iterations < options.max_iterations;
         ++result.iterations) {
        const Vector resid = linalg::sub(a.multiply(result.s), b);
        Vector grad = a.multiply_transpose(resid);
        linalg::scale(2.0, grad);
        if (w > 0.0) {
            for (std::size_t i = 0; i < n; ++i) {
                grad[i] += w * std::log(result.s[i] / p[i]);
            }
        }
        double stat = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            stat = std::max(stat, std::abs(result.s[i] * grad[i]));
        }
        if (stat <= options.tolerance * grad_scale) {
            result.converged = true;
            break;
        }
        const double norm = std::max(stat, 1e-300);
        bool accepted = false;
        for (int bt = 0; bt < 60; ++bt) {
            Vector trial(n);
            const double step = eta / norm;
            for (std::size_t i = 0; i < n; ++i) {
                double ex = -step * result.s[i] * grad[i];
                ex = std::clamp(ex, -40.0, 40.0);
                trial[i] = result.s[i] * std::exp(ex);
            }
            const double ft = objective(trial);
            if (ft < f - 1e-12 * std::abs(f)) {
                result.s = std::move(trial);
                f = ft;
                accepted = true;
                eta = std::min(eta * 2.0, 1e6);
                break;
            }
            eta *= 0.5;
            if (eta < 1e-18) break;
        }
        if (!accepted) {
            result.converged = true;
            break;
        }
    }
    result.objective = f;
    return result;
}

/// Synthetic consistent demands on a generated backbone: gravity-form
/// positive demands with deterministic jitter.
linalg::Vector synthetic_demands(const topology::Topology& topo,
                                 unsigned seed) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> jitter(0.5, 1.5);
    linalg::Vector s(topo.pair_count());
    for (std::size_t p = 0; p < s.size(); ++p) {
        const auto [src, dst] = topo.pair_nodes(p);
        s[p] = topo.pop(src).weight * topo.pop(dst).weight * jitter(rng);
    }
    return s;
}

}  // namespace

int main(int argc, char** argv) {
    std::string json_path = "BENCH_solvers.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::printf("usage: %s [--json PATH]\n", argv[0]);
            return 2;
        }
    }

    bench::header(
        "Solver kernels: sparse-aware / blocked fast paths vs naive dense",
        "engineering bench (no paper figure); ROADMAP stress-scaling item",
        "identical numerics, large constant-factor wins at generated "
        "backbone scale");

    // ---- Phase 1: dense kernels -------------------------------------
    std::printf("\n[1] dense kernels\n");
    const std::size_t gemm_n = 320;
    const linalg::Matrix ga = random_matrix(gemm_n, gemm_n, 11);
    const linalg::Matrix gb = random_matrix(gemm_n, gemm_n, 12);
    linalg::Matrix gemm_blocked_out;
    linalg::Matrix gemm_naive_out;
    const double gemm_blocked_s =
        time_best(3, [&] { gemm_blocked_out = linalg::gemm(ga, gb); });
    const double gemm_naive_s =
        time_best(3, [&] { gemm_naive_out = gemm_reference(ga, gb); });
    const bool gemm_bitwise = gemm_blocked_out == gemm_naive_out;
    const double gemm_speedup = gemm_blocked_s > 0.0
                                    ? gemm_naive_s / gemm_blocked_s
                                    : 0.0;
    std::printf("  gemm %zux%zu: naive %.3fs -> blocked %.3fs "
                "(%.2fx, bitwise=%s)\n",
                gemm_n, gemm_n, gemm_naive_s, gemm_blocked_s, gemm_speedup,
                gemm_bitwise ? "yes" : "NO");
    if (!gemm_bitwise) {
        fail("blocked gemm is not bit-for-bit the naive kernel "
             "(max diff %.3g)",
             linalg::max_abs_diff(gemm_blocked_out, gemm_naive_out));
    }

    // Three gated sizes above 1000 with best-of-3 timings: the gate
    // takes the best speedup across them, so a single noisy
    // measurement on a shared runner cannot flip the verdict.  (Sizes
    // whose row stride is a multiple of 4 KB — 1024, 1536 — alias L1
    // cache sets and run measurably worse in both kernels; 1280 and
    // 1448 are the representative non-pathological points.)
    std::vector<CholeskyPoint> chol_points;
    double chol_gate_speedup = 0.0;
    for (const std::size_t n : {512ul, 1024ul, 1280ul, 1448ul}) {
        const linalg::Matrix spd = random_spd(n, 21 + (unsigned)n);
        CholeskyPoint pt;
        pt.n = n;
        linalg::Matrix lu_ref;
        linalg::Matrix lb;
        pt.unblocked_seconds = time_best(
            3, [&] { lu_ref = linalg::cholesky_factor_unblocked(spd); });
        pt.blocked_seconds = time_best(
            3, [&] { lb = linalg::cholesky_factor_blocked(spd); });
        pt.speedup = pt.blocked_seconds > 0.0
                         ? pt.unblocked_seconds / pt.blocked_seconds
                         : 0.0;
        pt.max_factor_diff = linalg::max_abs_diff(lu_ref, lb);
        const double scale = std::max(1.0, lu_ref.max_abs());
        std::printf("  cholesky n=%4zu: unblocked %.3fs -> blocked %.3fs "
                    "(%.2fx, max |dL| %.3g)\n",
                    n, pt.unblocked_seconds, pt.blocked_seconds, pt.speedup,
                    pt.max_factor_diff);
        if (pt.max_factor_diff > 1e-12 * scale) {
            fail("blocked Cholesky deviates from unblocked "
                 "(%.3g > 1e-12 * %.3g)",
                 pt.max_factor_diff, scale);
        }
        if (n >= 1000) {
            chol_gate_speedup = std::max(chol_gate_speedup, pt.speedup);
        }
        chol_points.push_back(pt);
    }
    if (chol_gate_speedup < 1.5) {
        fail("blocked Cholesky below the 1.5x gate at n >= 1000 "
             "(best %.2fx)",
             chol_gate_speedup);
    }

    // ---- Phase 2: generated-backbone scaling ------------------------
    std::printf("\n[2] scaling on generated backbones (degree 4, seed 1)\n");
    std::vector<ScalePoint> scale_points;
    double gram_gate_speedup = 0.0;
    for (const std::size_t pops : {25ul, 100ul, 200ul}) {
        ScalePoint pt;
        pt.pops = pops;
        topology::Topology topo;
        linalg::SparseMatrix r;
        pt.routing_build_seconds = time_best(1, [&] {
            topo = topology::generated_backbone(pops, 4.0, 1);
            r = routing::igp_routing_matrix(topo);
        });
        pt.links = topo.link_count();
        pt.pairs = topo.pair_count();
        pt.nonzeros = r.nonzeros();

        const linalg::Matrix dense = r.to_dense();
        linalg::Vector x(pt.pairs);
        linalg::Vector t(pt.links);
        std::mt19937_64 rng(5);
        std::uniform_real_distribution<double> dist(0.0, 1.0);
        for (double& v : x) v = dist(rng);
        for (double& v : t) v = dist(rng);

        linalg::Vector sink;
        pt.gemv_dense_seconds =
            time_best(3, [&] { sink = linalg::gemv(dense, x); });
        pt.gemv_sparse_seconds =
            time_best(3, [&] { sink = r.multiply(x); });
        pt.gemv_t_dense_seconds =
            time_best(3, [&] { sink = linalg::gemv_transpose(dense, t); });
        pt.gemv_t_sparse_seconds =
            time_best(3, [&] { sink = r.multiply_transpose(t); });
        std::printf("  pops=%3zu links=%4zu pairs=%5zu nnz=%6zu  "
                    "gemv %7.1fx  gemv' %7.1fx",
                    pops, pt.links, pt.pairs, pt.nonzeros,
                    pt.gemv_dense_seconds /
                        std::max(1e-12, pt.gemv_sparse_seconds),
                    pt.gemv_t_dense_seconds /
                        std::max(1e-12, pt.gemv_t_sparse_seconds));

        // The Gram comparison needs the dense P x P output twice; at
        // 200 PoPs that output alone is ~12.7 GB, so the comparison is
        // capped at 100 PoPs (not silently — this is the scale at
        // which only the sparse operator path remains viable).
        if (pops <= 100) {
            linalg::Matrix gs;
            linalg::Matrix gd;
            linalg::Matrix gref;
            linalg::SparseMatrix gcsr;
            pt.gram_sparse_seconds =
                time_best(2, [&] { gs = linalg::gram_sparse(r); });
            pt.gram_csr_seconds = time_best(
                2, [&] { gcsr = linalg::gram_sparse_csr(r); });
            pt.gram_csr_nnz = gcsr.nonzeros();
            pt.gram_dense_seconds = time_best(
                1, [&] { gd = linalg::gram(r.to_dense()); });
            // The 3x gate measures the sparse Gram *representation*
            // against the dense construction (densify + the pre-PR
            // naive rank-1 kernel).  The dense-output sparse
            // accumulation is reported too; at this scale both
            // dense-output paths are floored by materializing the
            // P x P result (page faults + ~0.8 GB of writes), which
            // is exactly the cost the CSR form does not pay.
            pt.gram_reference_seconds = time_best(
                1, [&] { gref = gram_reference(r.to_dense()); });
            pt.gram_speedup =
                pt.gram_csr_seconds > 0.0
                    ? pt.gram_reference_seconds / pt.gram_csr_seconds
                    : 0.0;
            pt.gram_speedup_dense_out =
                pt.gram_sparse_seconds > 0.0
                    ? pt.gram_reference_seconds / pt.gram_sparse_seconds
                    : 0.0;
            pt.gram_measured = true;
            pt.gram_exact =
                gs == gd && gs == gref && gcsr.to_dense() == gd;
            std::printf("  gram: naive %.3fs / blocked %.3fs -> sparse "
                        "dense-out %.3fs (%.2fx) / csr %.3fs (%.2fx, "
                        "nnz %.1fM, exact=%s)\n",
                        pt.gram_reference_seconds, pt.gram_dense_seconds,
                        pt.gram_sparse_seconds, pt.gram_speedup_dense_out,
                        pt.gram_csr_seconds, pt.gram_speedup,
                        static_cast<double>(pt.gram_csr_nnz) / 1e6,
                        pt.gram_exact ? "yes" : "NO");
            if (!pt.gram_exact) {
                fail("sparse Gram differs from densify+gram at %zu PoPs "
                     "(max diff %.3g)",
                     pops, linalg::max_abs_diff(gs, gd));
            }
            if (pops >= 100) {
                gram_gate_speedup = std::max(gram_gate_speedup,
                                             pt.gram_speedup);
            }
        } else {
            // Dense P x P output impossible (~12.7 GB) — the CSR form
            // is the only Gram that exists at this scale.
            linalg::SparseMatrix gcsr;
            pt.gram_csr_seconds =
                time_best(1, [&] { gcsr = linalg::gram_sparse_csr(r); });
            pt.gram_csr_nnz = gcsr.nonzeros();
            std::printf("  gram: dense output impossible (%zux%zu ~%.1f "
                        "GB); csr %.3fs (nnz %.1fM)\n",
                        pt.pairs, pt.pairs,
                        static_cast<double>(pt.pairs) *
                            static_cast<double>(pt.pairs) * 8.0 / 1e9,
                        pt.gram_csr_seconds,
                        static_cast<double>(pt.gram_csr_nnz) / 1e6);
        }
        scale_points.push_back(pt);
    }
    if (gram_gate_speedup < 3.0) {
        fail("sparse Gram construction below the 3x gate at 100 PoPs "
             "(%.2fx)",
             gram_gate_speedup);
    }

    // NNLS dual-refresh ablation at paper scale (600 pairs): the
    // Bayesian-style ridge system (strictly convex, so the minimizer is
    // unique and both refreshes must land on it) solved with the dense
    // O(n * |passive|) refresh on a materialized shifted Gram vs the
    // virtual-shift + sparse-operator O(nnz) refresh.
    {
        const topology::Topology topo =
            topology::generated_backbone(25, 4.0, 1);
        const linalg::SparseMatrix r = routing::igp_routing_matrix(topo);
        const linalg::Matrix g = linalg::gram_sparse(r);
        const double ridge = 1e-4;
        linalg::Matrix g_shifted = g;
        for (std::size_t i = 0; i < g_shifted.rows(); ++i) {
            g_shifted(i, i) += ridge;
        }
        linalg::Vector demands(r.cols());
        std::mt19937_64 rng(7);
        std::uniform_real_distribution<double> dist(0.1, 1.0);
        for (double& v : demands) v = dist(rng);
        const linalg::Vector atb =
            r.multiply_transpose(r.multiply(demands));
        linalg::NnlsResult dense_result;
        linalg::NnlsResult sparse_result;
        const double nnls_dense_s = time_best(3, [&] {
            dense_result = linalg::nnls_gram(g_shifted, atb);
        });
        linalg::NnlsOptions sparse_opts;
        sparse_opts.gram_operator = &r;
        sparse_opts.gram_diagonal_shift = ridge;
        const double nnls_sparse_s = time_best(3, [&] {
            sparse_result = linalg::nnls_gram(g, atb, 0.0, sparse_opts);
        });
        const double nnls_diff =
            vec_max_abs_diff(dense_result.x, sparse_result.x);
        const double nnls_scale =
            std::max(1.0, linalg::nrm_inf(dense_result.x));
        std::printf("  nnls ridge (600 pairs): dense refresh %.3fs -> "
                    "sparse refresh %.3fs (%.2fx, rel |dx| %.3g)\n",
                    nnls_dense_s, nnls_sparse_s,
                    nnls_dense_s / std::max(1e-12, nnls_sparse_s),
                    nnls_diff / nnls_scale);
        if (nnls_diff > 1e-9 * nnls_scale) {
            fail("nnls sparse-operator refresh diverges (rel %.3g > 1e-9)",
                 nnls_diff / nnls_scale);
        }
    }

    // ---- Phase 3: paper-scale estimator equivalence ------------------
    std::printf("\n[3] paper-scale estimator equivalence\n");
    double bayes_worst = 0.0;
    double vardi_worst = 0.0;
    double vardi_operator_worst = 0.0;
    bool vardi_operator_bitwise = true;
    double bayes_operator_worst = 0.0;
    bool bayes_operator_bitwise = true;
    bool paper_gram_exact = true;
    for (const scenario::Network network :
         {scenario::Network::europe, scenario::Network::usa}) {
        const scenario::Scenario sc = scenario::make_scenario(network);

        const bool gram_exact =
            linalg::gram_sparse(sc.routing) ==
            linalg::gram(sc.routing.to_dense());
        paper_gram_exact = paper_gram_exact && gram_exact;

        const core::SnapshotProblem snap = sc.busy_snapshot();
        const linalg::Vector prior = core::gravity_estimate(snap);
        core::BayesianOptions bopt;
        const linalg::Vector fast =
            core::bayesian_estimate(snap, prior, bopt);
        const linalg::Vector reference =
            bayesian_reference(snap, prior, bopt.regularization);
        const double bdiff = vec_max_abs_diff(fast, reference);
        bayes_worst = std::max(bayes_worst, bdiff);

        // Vardi: self-derived transformed Gram vs the shared (epoch
        // cache style) one built from the sparse Gram.
        core::SeriesProblem series = sc.busy_series_window(12);
        core::VardiOptions vopt;
        const linalg::Vector self_derived =
            core::vardi_estimate(series, vopt).lambda;
        const linalg::Matrix g1 = linalg::gram_sparse(sc.routing);
        linalg::Matrix transformed(g1.rows(), g1.cols(), 0.0);
        for (std::size_t p = 0; p < g1.rows(); ++p) {
            for (std::size_t q = 0; q < g1.cols(); ++q) {
                const double v = g1(p, q);
                if (v != 0.0) {
                    transformed(p, q) =
                        v + vopt.second_moment_weight * v * v;
                }
            }
        }
        core::VardiOptions shared = vopt;
        shared.shared_transformed_gram = &transformed;
        const linalg::Vector shared_result =
            core::vardi_estimate(series, shared).lambda;
        const double vdiff = vec_max_abs_diff(self_derived, shared_result);
        vardi_worst = std::max(vardi_worst, vdiff);

        // Gram-free operator forms vs the dense paths above.  Both are
        // bitwise by construction: the operator Vardi generates
        // transformed-Gram columns that replay the Gram kernels'
        // accumulation order with the dense loop's transform
        // expression, and the operator Bayesian (paper scale: pairs
        // within the dense-KKT limit) runs the factored passive-set
        // NNLS whose dual refresh and KKT rows reproduce the dense
        // NNLS path's arithmetic term for term.
        core::VardiOptions vop_op = vopt;
        vop_op.operator_form = true;
        const linalg::Vector vardi_operator =
            core::vardi_estimate(series, vop_op).lambda;
        vardi_operator_bitwise =
            vardi_operator_bitwise && vec_bitwise(vardi_operator,
                                                  self_derived);
        vardi_operator_worst =
            std::max(vardi_operator_worst,
                     vec_max_abs_diff(vardi_operator, self_derived));

        core::BayesianOptions bop_op = bopt;
        bop_op.operator_form = true;
        const linalg::Vector bayes_operator =
            core::bayesian_estimate(snap, prior, bop_op);
        bayes_operator_bitwise =
            bayes_operator_bitwise && vec_bitwise(bayes_operator, fast);
        bayes_operator_worst = std::max(
            bayes_operator_worst, vec_max_abs_diff(bayes_operator, fast));

        std::printf("  %-6s gram exact=%s  bayesian |fast-ref| %.3g  "
                    "vardi |self-shared| %.3g  operator bitwise: "
                    "vardi=%s bayesian=%s\n",
                    sc.name.c_str(), gram_exact ? "yes" : "NO", bdiff,
                    vdiff,
                    vec_bitwise(vardi_operator, self_derived) ? "yes"
                                                              : "NO",
                    vec_bitwise(bayes_operator, fast) ? "yes" : "NO");
    }
    if (!paper_gram_exact) {
        fail("sparse Gram not bitwise on a paper routing matrix");
    }
    if (bayes_worst > 1e-9) {
        fail("Bayesian fast path diverges from the pre-PR dense path "
             "(%.3g > 1e-9)",
             bayes_worst);
    }
    if (vardi_worst > 1e-9) {
        fail("Vardi shared transformed Gram diverges (%.3g > 1e-9)",
             vardi_worst);
    }
    if (!vardi_operator_bitwise) {
        fail("operator-form Vardi is not bit-for-bit the dense path at "
             "paper scale (max diff %.3g)",
             vardi_operator_worst);
    }
    if (!bayes_operator_bitwise) {
        fail("operator-form Bayesian is not bit-for-bit the dense NNLS "
             "path at paper scale (max diff %.3g)",
             bayes_operator_worst);
    }

    // ---- Phase 4: projection / QP hot paths --------------------------
    // The matrix-free rewrites of this PR: flat/incremental Kruithof,
    // the operator-form entropy loop, and the factored fanout QP — the
    // last dense-in-pairs structures are gone, so every method below
    // also runs at 200 PoPs.
    std::printf("\n[4] projection & QP hot paths\n");
    double kruithof_ref_seconds = 0.0;
    double kruithof_fast_seconds = 0.0;
    double kruithof_speedup = 0.0;
    double kruithof_rel_diff = 0.0;
    double ipf_ref_seconds = 0.0;
    double ipf_fast_seconds = 0.0;
    bool ipf_bitwise = true;
    double entropy_window_seconds = 0.0;
    double entropy_ref_seconds = 0.0;
    double entropy_speedup = 0.0;
    const double entropy_budget_seconds = 20.0;
    double entropy_paper_diff = 0.0;
    double fanout_paper_rel_diff = 0.0;
    {
        // Kruithof/MART at 100 PoPs (9900 pairs), consistent loads.
        const topology::Topology topo =
            topology::generated_backbone(100, 4.0, 1);
        const linalg::SparseMatrix r = routing::igp_routing_matrix(topo);
        const linalg::Vector truth = synthetic_demands(topo, 33);
        core::SnapshotProblem snap;
        snap.topo = &topo;
        snap.routing = &r;
        snap.loads = r.multiply(truth);
        linalg::Vector prior(r.cols(), 1.0);
        {
            double pm = 0.0;
            for (double v : truth) pm += v;
            pm /= static_cast<double>(truth.size());
            for (double& v : prior) v = pm;  // flat prior at truth scale
        }
        core::KruithofOptions kopt;
        kopt.max_iterations = 40;
        kopt.tolerance = 0.0;  // fixed sweep count: identical work
        core::KruithofResult fast_result;
        core::KruithofResult ref_result;
        kruithof_fast_seconds = time_best(2, [&] {
            fast_result = core::kruithof_general(snap, prior, kopt);
        });
        kruithof_ref_seconds = time_best(2, [&] {
            ref_result = kruithof_general_reference(snap, prior, kopt);
        });
        kruithof_speedup = kruithof_fast_seconds > 0.0
                               ? kruithof_ref_seconds / kruithof_fast_seconds
                               : 0.0;
        double scale = 1.0;
        for (double v : ref_result.s) scale = std::max(scale, v);
        for (std::size_t p = 0; p < ref_result.s.size(); ++p) {
            kruithof_rel_diff =
                std::max(kruithof_rel_diff,
                         std::abs(fast_result.s[p] - ref_result.s[p]));
        }
        kruithof_rel_diff /= scale;
        std::printf("  kruithof MART 100 PoPs (40 sweeps): ref %.3fs -> "
                    "fast %.3fs (%.2fx, rel |ds| %.3g)\n",
                    kruithof_ref_seconds, kruithof_fast_seconds,
                    kruithof_speedup, kruithof_rel_diff);
        if (kruithof_speedup < 3.0) {
            fail("kruithof sparse-aware rewrite below the 3x gate at "
                 "100 PoPs (%.2fx)",
                 kruithof_speedup);
        }
        if (kruithof_rel_diff > 1e-9) {
            fail("kruithof rewrite diverges from the pre-PR path "
                 "(rel %.3g > 1e-9)",
                 kruithof_rel_diff);
        }

        // Classic IPF at 100 nodes: flat skip-diagonal loops vs the
        // historical TrafficMatrix sweep (bitwise contract, pinned in
        // tests/core/test_kruithof.cpp; timed here).
        const std::size_t nodes = 100;
        std::mt19937_64 rng(9);
        std::uniform_real_distribution<double> dist(0.5, 2.0);
        linalg::Vector ipf_prior(nodes * (nodes - 1));
        for (double& v : ipf_prior) v = dist(rng);
        traffic::TrafficMatrix target(nodes, ipf_prior);
        const linalg::Vector rows = target.row_totals();
        const linalg::Vector cols = target.col_totals();
        for (double& v : ipf_prior) v *= dist(rng);
        core::KruithofOptions ipf_opt;
        ipf_opt.max_iterations = 50;
        ipf_opt.tolerance = 0.0;
        core::KruithofResult ipf_fast;
        ipf_fast_seconds = time_best(2, [&] {
            ipf_fast = core::kruithof_ipf(nodes, ipf_prior, rows, cols,
                                          ipf_opt);
        });
        linalg::Vector ipf_ref;
        ipf_ref_seconds = time_best(2, [&] {
            traffic::TrafficMatrix tm(nodes, ipf_prior);
            for (std::size_t it = 0; it < ipf_opt.max_iterations; ++it) {
                linalg::Vector rt = tm.row_totals();
                for (std::size_t i = 0; i < nodes; ++i) {
                    if (rt[i] <= 0.0) continue;
                    const double f = rows[i] / rt[i];
                    for (std::size_t j = 0; j < nodes; ++j) {
                        if (i != j) tm.set(i, j, tm(i, j) * f);
                    }
                }
                linalg::Vector ct = tm.col_totals();
                for (std::size_t j = 0; j < nodes; ++j) {
                    if (ct[j] <= 0.0) continue;
                    const double f = cols[j] / ct[j];
                    for (std::size_t i = 0; i < nodes; ++i) {
                        if (i != j) tm.set(i, j, tm(i, j) * f);
                    }
                }
            }
            ipf_ref = tm.to_pair_vector();
        });
        for (std::size_t p = 0; p < ipf_ref.size(); ++p) {
            ipf_bitwise = ipf_bitwise && ipf_fast.s[p] == ipf_ref[p];
        }
        std::printf("  kruithof IPF 100 nodes (50 sweeps): ref %.3fs -> "
                    "flat %.3fs (%.2fx, bitwise=%s)\n",
                    ipf_ref_seconds, ipf_fast_seconds,
                    ipf_fast_seconds > 0.0
                        ? ipf_ref_seconds / ipf_fast_seconds
                        : 0.0,
                    ipf_bitwise ? "yes" : "NO");
        if (!ipf_bitwise) {
            fail("flat IPF is not bit-for-bit the TrafficMatrix sweep");
        }

        // Entropy window at 9900 pairs under a wall-clock budget.
        const linalg::Vector gravity_prior = core::gravity_estimate(snap);
        linalg::EntropySolverOptions eopt;
        eopt.max_iterations = 120;
        linalg::EntropySolverResult entropy_fast;
        entropy_window_seconds = time_best(1, [&] {
            entropy_fast = linalg::kl_regularized_ls(
                r, snap.loads, gravity_prior, 1e-3, eopt);
        });
        linalg::EntropySolverResult entropy_ref;
        entropy_ref_seconds = time_best(1, [&] {
            entropy_ref = entropy_reference(r, snap.loads, gravity_prior,
                                            1e-3, eopt);
        });
        entropy_speedup = entropy_window_seconds > 0.0
                              ? entropy_ref_seconds / entropy_window_seconds
                              : 0.0;
        bool entropy_bitwise = entropy_fast.s == entropy_ref.s;
        std::printf("  entropy 9900 pairs (120 iters): ref %.3fs -> "
                    "operator %.3fs (%.2fx, budget %.0fs, bitwise=%s)\n",
                    entropy_ref_seconds, entropy_window_seconds,
                    entropy_speedup, entropy_budget_seconds,
                    entropy_bitwise ? "yes" : "NO");
        if (entropy_window_seconds > entropy_budget_seconds) {
            fail("entropy window exceeds the %.0fs budget at 9900 pairs "
                 "(%.2fs)",
                 entropy_budget_seconds, entropy_window_seconds);
        }
        if (!entropy_bitwise) {
            fail("operator-form entropy loop is not bit-for-bit the "
                 "pre-PR solver");
        }
    }

    // Paper-scale equivalence of the factored/operator rewrites: the
    // fanout estimate through the factored QP (exact-LU gather regime)
    // and the entropy estimate through the operator loop vs the pre-PR
    // dense-path references.
    bool fanout_operator_bitwise = true;
    double fanout_operator_worst = 0.0;
    for (const scenario::Network network :
         {scenario::Network::europe, scenario::Network::usa}) {
        const scenario::Scenario sc = scenario::make_scenario(network);
        const core::SeriesProblem series = sc.busy_series_window(8);
        const core::FanoutResult fanout_now = core::fanout_estimate(series);

        // Pre-PR fanout: dense P x P weighted Hessian + dense-H QP.
        const linalg::Matrix g1 = linalg::gram_sparse(sc.routing);
        const std::size_t pairs = sc.routing.cols();
        const std::size_t nodes = sc.topo.pop_count();
        linalg::Matrix hd(pairs, pairs, 0.0);
        linalg::Vector fd(pairs, 0.0);
        std::vector<std::size_t> source_of(pairs);
        linalg::Matrix e_dense(nodes, pairs, 0.0);
        std::vector<linalg::Triplet> etrips;
        for (std::size_t p = 0; p < pairs; ++p) {
            source_of[p] = sc.topo.pair_nodes(p).first;
            e_dense(source_of[p], p) = 1.0;
            etrips.push_back({source_of[p], p, 1.0});
        }
        const linalg::SparseMatrix e_sparse(nodes, pairs,
                                            std::move(etrips));
        const std::size_t window = series.loads.size();
        for (std::size_t k = 0; k < window; ++k) {
            linalg::Vector w(pairs, 0.0);
            for (std::size_t p = 0; p < pairs; ++p) {
                w[p] = series.loads[k]
                                   [sc.topo.ingress_link(source_of[p])];
            }
            const linalg::Vector rt =
                sc.routing.multiply_transpose(series.loads[k]);
            for (std::size_t p = 0; p < pairs; ++p) {
                fd[p] += w[p] * rt[p];
                if (w[p] == 0.0) continue;
                for (std::size_t q = 0; q < pairs; ++q) {
                    if (g1(p, q) != 0.0) {
                        hd(p, q) += w[p] * w[q] * g1(p, q);
                    }
                }
            }
        }
        linalg::Vector mean_loads(sc.routing.rows(), 0.0);
        for (const linalg::Vector& t : series.loads) {
            linalg::axpy(1.0, t, mean_loads);
        }
        linalg::scale(1.0 / static_cast<double>(window), mean_loads);
        double total_exit = 0.0;
        for (std::size_t n2 = 0; n2 < nodes; ++n2) {
            total_exit += mean_loads[sc.topo.egress_link(n2)];
        }
        double hmax = 0.0;
        for (std::size_t p = 0; p < pairs; ++p) {
            hmax = std::max(hmax, hd(p, p));
        }
        const double eps = 1e-3 * std::max(hmax, 1e-300);
        for (std::size_t p = 0; p < pairs; ++p) {
            const std::size_t dst = sc.topo.pair_nodes(p).second;
            const double alpha_gravity =
                total_exit > 0.0
                    ? mean_loads[sc.topo.egress_link(dst)] / total_exit
                    : 0.0;
            hd(p, p) += eps;
            fd[p] += eps * alpha_gravity;
        }
        linalg::EqQpNonnegOptions qp_opts;
        qp_opts.equality_operator = &e_sparse;
        const linalg::EqQpNonnegResult qp_ref = linalg::solve_eq_qp_nonneg(
            hd, fd, e_dense, linalg::Vector(nodes, 1.0), qp_opts);
        double fan_scale = 1.0;
        double fan_diff = 0.0;
        for (std::size_t p = 0; p < pairs; ++p) {
            fan_scale = std::max(fan_scale, std::abs(qp_ref.x[p]));
            fan_diff = std::max(
                fan_diff, std::abs(fanout_now.fanouts[p] - qp_ref.x[p]));
        }
        fanout_paper_rel_diff =
            std::max(fanout_paper_rel_diff, fan_diff / fan_scale);

        // Gram-free operator fanout vs the factored CSR path, both
        // consuming the SAME incremental window aggregates (the
        // engine's configuration).  With aggregates the factored
        // assembly reads H(p,q) = outer(src p, src q) * G1(p,q) —
        // exactly the values the operator's on-demand KKT columns
        // generate — so the dense-gather exact-LU regime at paper
        // scale is bitwise.
        engine::SlidingWindow agg_window(&sc.topo, &sc.routing, window,
                                         /*track_load_moments=*/false);
        for (std::size_t k = 0; k < window; ++k) {
            agg_window.push(k, series.loads[k]);
        }
        const linalg::Vector agg_mean = agg_window.mean_loads();
        core::FanoutWindowAggregates aggs;
        aggs.source_outer = &agg_window.source_outer();
        aggs.weighted_rhs = &agg_window.weighted_rhs();
        aggs.mean_loads = &agg_mean;
        core::FanoutOptions fo_factored;
        fo_factored.aggregates = aggs;
        core::FanoutOptions fo_operator;
        fo_operator.operator_form = true;
        fo_operator.aggregates = aggs;
        const core::FanoutResult fan_factored =
            core::fanout_estimate(series, fo_factored);
        const core::FanoutResult fan_operator =
            core::fanout_estimate(series, fo_operator);
        fanout_operator_bitwise =
            fanout_operator_bitwise &&
            vec_bitwise(fan_operator.fanouts, fan_factored.fanouts);
        fanout_operator_worst =
            std::max(fanout_operator_worst,
                     vec_max_abs_diff(fan_operator.fanouts,
                                      fan_factored.fanouts));

        // Entropy: operator loop vs the pre-PR reference.
        const core::SnapshotProblem snap = sc.busy_snapshot();
        const linalg::Vector prior = core::gravity_estimate(snap);
        linalg::EntropySolverOptions eopt;
        eopt.max_iterations = 400;
        const linalg::EntropySolverResult efast = linalg::kl_regularized_ls(
            sc.routing, snap.loads, prior, 1e-3, eopt);
        const linalg::EntropySolverResult eref = entropy_reference(
            sc.routing, snap.loads, prior, 1e-3, eopt);
        double escale = 1.0;
        for (double v : eref.s) escale = std::max(escale, v);
        for (std::size_t p = 0; p < eref.s.size(); ++p) {
            entropy_paper_diff =
                std::max(entropy_paper_diff,
                         std::abs(efast.s[p] - eref.s[p]) / escale);
        }
        std::printf("  %-6s fanout factored-vs-dense rel |da| %.3g  "
                    "operator-vs-factored bitwise=%s  "
                    "entropy operator-vs-ref rel |ds| %.3g\n",
                    sc.name.c_str(), fan_diff / fan_scale,
                    vec_bitwise(fan_operator.fanouts, fan_factored.fanouts)
                        ? "yes"
                        : "NO",
                    entropy_paper_diff);
    }
    if (fanout_paper_rel_diff > 1e-9) {
        fail("factored fanout QP diverges from the pre-PR dense path "
             "(rel %.3g > 1e-9)",
             fanout_paper_rel_diff);
    }
    if (!fanout_operator_bitwise) {
        fail("operator-form fanout QP is not bit-for-bit the factored "
             "CSR path under shared aggregates (max diff %.3g)",
             fanout_operator_worst);
    }
    if (entropy_paper_diff > 1e-9) {
        fail("operator entropy diverges from the pre-PR path "
             "(rel %.3g > 1e-9)",
             entropy_paper_diff);
    }

    // ---- Phase 5: 200-PoP window, no dense pairs x pairs anywhere ----
    std::printf("\n[5] 200-PoP generated backbone (39800 pairs)\n");
    double p200_gravity_seconds = 0.0;
    double p200_kruithof_seconds = 0.0;
    double p200_entropy_seconds = 0.0;
    double p200_bayesian_seconds = 0.0;
    double p200_bayesian_factored_seconds = 0.0;
    double p200_bayesian_operator_delta = 0.0;
    double p200_fanout_seconds = 0.0;
    double p200_fanout_factored_seconds = 0.0;
    double p200_fanout_operator_delta = 0.0;
    double p200_vardi_seconds = 0.0;
    double p200_vardi_warm_rel_diff = 0.0;
    std::size_t p200_peak_alloc_bytes = 0;
    std::size_t p200_total_alloc_bytes = 0;
    bool p200_ok = true;
    {
        const topology::Topology topo =
            topology::generated_backbone(200, 4.0, 1);
        const linalg::SparseMatrix r = routing::igp_routing_matrix(topo);
        const std::size_t pairs = r.cols();
        const linalg::Vector truth = synthetic_demands(topo, 77);
        core::SnapshotProblem snap;
        snap.topo = &topo;
        snap.routing = &r;
        snap.loads = r.multiply(truth);

        // Constant-fanout window for the fanout method.
        const std::size_t window = 4;
        const linalg::Vector alpha = traffic::fanouts_from_demands(
            topo.pop_count(), truth);
        std::mt19937_64 rng(5);
        std::uniform_real_distribution<double> dist(0.5, 2.0);
        core::SeriesProblem series;
        series.topo = &topo;
        series.routing = &r;
        const linalg::Vector totals0 =
            traffic::node_totals_from_demands(topo.pop_count(), truth);
        for (std::size_t k = 0; k < window; ++k) {
            linalg::Vector totals = totals0;
            for (double& v : totals) v *= dist(rng);
            series.loads.push_back(r.multiply(
                traffic::demands_from_fanouts(topo.pop_count(), alpha,
                                              totals)));
        }

        linalg::detail::reset_peak_matrix_allocation();
        linalg::detail::reset_total_matrix_allocation();
        const auto check_estimate = [&](const char* name,
                                        const linalg::Vector& est) {
            if (est.size() != pairs) {
                fail("200-PoP %s estimate has wrong size", name);
                p200_ok = false;
                return;
            }
            for (double v : est) {
                if (!std::isfinite(v) || v < 0.0) {
                    fail("200-PoP %s estimate not finite/nonnegative",
                         name);
                    p200_ok = false;
                    return;
                }
            }
        };

        linalg::Vector est;
        p200_gravity_seconds =
            time_best(1, [&] { est = core::gravity_estimate(snap); });
        check_estimate("gravity", est);
        const linalg::Vector prior = est;
        std::printf("  gravity   %7.2fs\n", p200_gravity_seconds);

        core::KruithofOptions kopt;
        kopt.max_iterations = 30;
        kopt.check_every = 10;
        p200_kruithof_seconds = time_best(1, [&] {
            est = core::kruithof_general(snap, prior, kopt).s;
        });
        check_estimate("kruithof", est);
        std::printf("  kruithof  %7.2fs (30 sweeps)\n",
                    p200_kruithof_seconds);

        core::EntropyOptions ent;
        ent.solver.max_iterations = 60;
        p200_entropy_seconds = time_best(1, [&] {
            est = core::entropy_estimate(snap, prior, ent);
        });
        check_estimate("entropy", est);
        std::printf("  entropy   %7.2fs (60 iters)\n",
                    p200_entropy_seconds);

        // The CSR Gram both sparse-path methods share (the only Gram
        // that exists at this scale).
        const linalg::SparseMatrix gram = linalg::gram_sparse_csr(r);

        // Bayesian and fanout default to the Gram-free operator path at
        // this scale (the engine's configuration); the factored-CSR
        // path runs once alongside as the reference, and the timing
        // plus worst element delta land in BENCH_solvers.json so the
        // two paths' agreement is tracked per run.
        core::BayesianOptions bopt;
        bopt.operator_form = true;
        bopt.qp.cg_max_iterations = 120;
        bopt.qp.max_active_set_rounds = 6;
        p200_bayesian_seconds = time_best(1, [&] {
            est = core::bayesian_estimate(snap, prior, bopt);
        });
        check_estimate("bayesian", est);
        core::BayesianOptions bopt_csr;
        bopt_csr.shared_sparse_gram = &gram;
        bopt_csr.qp.cg_max_iterations = 120;
        bopt_csr.qp.max_active_set_rounds = 6;
        linalg::Vector bayes_csr;
        p200_bayesian_factored_seconds = time_best(1, [&] {
            bayes_csr = core::bayesian_estimate(snap, prior, bopt_csr);
        });
        p200_bayesian_operator_delta = vec_max_abs_diff(est, bayes_csr);
        std::printf("  bayesian  %7.2fs (operator QP, cg<=120; factored "
                    "CSR %.2fs, |delta| %.3g)\n",
                    p200_bayesian_seconds, p200_bayesian_factored_seconds,
                    p200_bayesian_operator_delta);

        core::FanoutOptions fopt;
        fopt.operator_form = true;
        fopt.qp.cg_max_iterations = 150;
        // Round-count headroom, not extra work: the driver stops at
        // convergence, and how many rounds that takes shifts by one or
        // two with the host's FP contraction (-march=native FMA moved
        // this exact problem from 8 rounds to 9).  A cap at the
        // observed minimum makes the gate flake per-CPU.
        fopt.qp.max_active_set_rounds = 12;
        core::FanoutResult fanout_result;
        p200_fanout_seconds = time_best(
            1, [&] { fanout_result = core::fanout_estimate(series, fopt); });
        check_estimate("fanout", fanout_result.mean_demands);
        if (fanout_result.equality_violation > 1e-6) {
            fail("200-PoP fanout equality violation %.3g > 1e-6",
                 fanout_result.equality_violation);
            p200_ok = false;
        }
        core::FanoutOptions fopt_csr;
        fopt_csr.shared_sparse_gram = &gram;
        fopt_csr.qp.cg_max_iterations = 150;
        fopt_csr.qp.max_active_set_rounds = 12;
        core::FanoutResult fanout_csr;
        p200_fanout_factored_seconds = time_best(
            1,
            [&] { fanout_csr = core::fanout_estimate(series, fopt_csr); });
        p200_fanout_operator_delta = vec_max_abs_diff(
            fanout_result.mean_demands, fanout_csr.mean_demands);
        std::printf("  fanout    %7.2fs (operator QP, %zu rounds, %zu cg "
                    "iters, eq viol %.2e; factored CSR %.2fs, |delta| "
                    "%.3g)\n",
                    p200_fanout_seconds, fanout_result.qp_iterations,
                    fanout_result.qp_cg_iterations,
                    fanout_result.equality_violation,
                    p200_fanout_factored_seconds,
                    p200_fanout_operator_delta);

        // Vardi through the operator form: the first scale at which
        // the method exists at all — its dense transformed Gram would
        // be the same 12.7 GB the other methods already avoid.  The
        // largest allocation it makes is the O(links^2) window
        // covariance (~11 MB), which is what the peak-allocation gate
        // below budgets for.  A warm start from the cold solution must
        // pass the dual check and land on the same estimate.
        core::VardiOptions vop;
        vop.operator_form = true;
        core::VardiResult vardi_cold;
        p200_vardi_seconds = time_best(
            1, [&] { vardi_cold = core::vardi_estimate(series, vop); });
        check_estimate("vardi", vardi_cold.lambda);
        core::VardiOptions vop_warm = vop;
        vop_warm.warm_start = &vardi_cold.lambda;
        const core::VardiResult vardi_warm =
            core::vardi_estimate(series, vop_warm);
        const double vardi_scale =
            std::max(1.0, linalg::nrm_inf(vardi_cold.lambda));
        p200_vardi_warm_rel_diff =
            vec_max_abs_diff(vardi_warm.lambda, vardi_cold.lambda) /
            vardi_scale;
        std::printf("  vardi     %7.2fs (operator NNLS, warm-vs-cold "
                    "rel |dl| %.3g)\n",
                    p200_vardi_seconds, p200_vardi_warm_rel_diff);
        if (p200_vardi_warm_rel_diff > 1e-9) {
            fail("200-PoP operator Vardi warm start diverges from the "
                 "cold solve (rel %.3g > 1e-9)",
                 p200_vardi_warm_rel_diff);
            p200_ok = false;
        }

        // The point of the whole exercise: nothing dense and quadratic
        // in the pair count was ever allocated.  The largest legitimate
        // dense allocations at this scale are O(links^2) scratch
        // (~11 MB); the gate leaves two orders of headroom below the
        // 12.7 GB dense Hessian/Gram.
        p200_peak_alloc_bytes = linalg::detail::peak_matrix_allocation_bytes();
        p200_total_alloc_bytes =
            linalg::detail::total_matrix_allocation_bytes();
        const std::size_t dense_pairs_bytes =
            pairs * pairs * sizeof(double);
        std::printf("  peak dense Matrix allocation: %.1f MB, cumulative "
                    "churn %.1f MB (dense pairs^2 would be %.1f GB)\n",
                    static_cast<double>(p200_peak_alloc_bytes) / 1e6,
                    static_cast<double>(p200_total_alloc_bytes) / 1e6,
                    static_cast<double>(dense_pairs_bytes) / 1e9);
        if (p200_peak_alloc_bytes >= dense_pairs_bytes / 100) {
            fail("a dense allocation within 100x of pairs^2 happened at "
                 "200 PoPs (%zu bytes)",
                 p200_peak_alloc_bytes);
            p200_ok = false;
        }
    }

    // ---- Phase 6: contract layer cost -------------------------------
    // Two gates on src/check/ (docs/STATIC_ANALYSIS.md):
    //   * bitwise: estimates are identical with contracts armed and
    //     suspended — the validators are read-only observers, and the
    //     compiled-out configuration therefore changes no numbers;
    //   * overhead: in the contracts-off build this lane runs
    //     (TME_CONTRACTS=0 in the release-native preset), the macro
    //     sites must cost nothing measurable (<1%) on a solver hot
    //     path.  In contracts-on builds the ratio is reported but not
    //     gated — there the armed checks legitimately cost time.
    std::printf("\n[6] contract layer (compiled %s, dbg %s)\n",
                check::contracts_compiled() ? "in" : "out",
                check::contracts_dbg_compiled() ? "in" : "out");
    double contracts_armed_seconds = 0.0;
    double contracts_suspended_seconds = 0.0;
    bool contracts_bitwise = true;
    {
        const topology::Topology topo =
            topology::generated_backbone(50, 4.0, 7);
        const linalg::SparseMatrix r = routing::igp_routing_matrix(topo);
        const linalg::Vector truth = synthetic_demands(topo, 71);
        core::SnapshotProblem snap;
        snap.topo = &topo;
        snap.routing = &r;
        snap.loads = r.multiply(truth);
        core::KruithofOptions kopt;
        kopt.max_iterations = 25;
        kopt.tolerance = 0.0;  // fixed sweeps: identical work per run
        linalg::Vector prior(r.cols(), 1.0);

        // Both arms run the SAME lambda into the SAME destination
        // buffers, interleaved rep by rep with each arm keeping its
        // best: two lambda instantiations or two result allocations
        // give the arms different code/data addresses, and on a sub-ms
        // window that alignment skew alone is a stable >1% "overhead".
        // Interleaving also cancels clock-frequency drift between arms.
        linalg::Vector gravity_out;
        core::KruithofResult kruithof_out;
        const auto run_window = [&] {
            gravity_out = core::gravity_estimate(snap);
            kruithof_out = core::kruithof_general(snap, prior, kopt);
        };
        contracts_armed_seconds = 1e300;
        contracts_suspended_seconds = 1e300;
        for (int rep = 0; rep < 25; ++rep) {
            contracts_armed_seconds = std::min(contracts_armed_seconds,
                                               time_best(1, run_window));
            check::ScopedContractSuspend off;
            contracts_suspended_seconds = std::min(
                contracts_suspended_seconds, time_best(1, run_window));
        }
        // Bitwise gate: one untimed run per arm, armed copied aside.
        run_window();
        const linalg::Vector armed_gravity = gravity_out;
        const linalg::Vector armed_kruithof_s = kruithof_out.s;
        {
            check::ScopedContractSuspend off;
            run_window();
        }
        for (std::size_t p = 0; p < armed_gravity.size(); ++p) {
            if (armed_gravity[p] != gravity_out[p] ||
                armed_kruithof_s[p] != kruithof_out.s[p]) {
                contracts_bitwise = false;
                break;
            }
        }
        const double overhead =
            contracts_suspended_seconds > 0.0
                ? contracts_armed_seconds / contracts_suspended_seconds -
                      1.0
                : 0.0;
        std::printf("  gravity+kruithof window: armed %.4fs, "
                    "suspended %.4fs (overhead %+.2f%%, bitwise=%s)\n",
                    contracts_armed_seconds, contracts_suspended_seconds,
                    overhead * 100.0, contracts_bitwise ? "yes" : "NO");
        if (!contracts_bitwise) {
            fail("estimates differ between contracts armed and "
                 "suspended — a validator perturbed the numerics");
        }
        if (!check::contracts_compiled() && overhead > 0.01) {
            fail("compiled-out contracts cost %.2f%% > 1%% on the "
                 "solver hot path — the macros are not free",
                 overhead * 100.0);
        }
    }

    // ---- Phase 7: 500-PoP Gram-free window ---------------------------
    // The Gram-free tentpole gate.  At 249500 pairs even the CSR Gram
    // is a pairs-coupled structure nobody can afford per epoch; every
    // method below runs off R and R' alone.  Two sub-gates:
    //   * five methods (gravity, Kruithof, entropy, Bayesian operator
    //     QP, fanout operator QP) complete a window inside the wall
    //     budget with peak dense Matrix allocation < 10 MB — five
    //     orders below the ~498 GB dense pairs^2 Gram;
    //   * the engine scheduler's default schedule (gravity + Bayesian +
    //     fanout) finishes a full window on a cold routing epoch with
    //     sparse_gram_built() and gram_built() still false — the
    //     operator wiring, not luck, keeps the quadratic builds off
    //     the steady-state path.
    std::printf("\n[7] 500-PoP generated backbone (Gram-free window)\n");
    double p500_build_seconds = 0.0;
    double p500_gravity_seconds = 0.0;
    double p500_kruithof_seconds = 0.0;
    double p500_entropy_seconds = 0.0;
    double p500_bayesian_seconds = 0.0;
    double p500_fanout_seconds = 0.0;
    double p500_scheduler_seconds = 0.0;
    std::size_t p500_pairs = 0;
    std::size_t p500_links = 0;
    std::size_t p500_nnz = 0;
    std::size_t p500_peak_alloc_bytes = 0;
    std::size_t p500_total_alloc_bytes = 0;
    bool p500_sparse_gram_built = true;
    bool p500_gram_built = true;
    bool p500_transpose_built = false;
    const double p500_budget_seconds = 300.0;
    const std::size_t p500_peak_alloc_limit = 10u * 1000u * 1000u;
    bool p500_ok = true;
    {
        topology::Topology topo;
        linalg::SparseMatrix r;
        p500_build_seconds = time_best(1, [&] {
            topo = topology::generated_backbone(500, 4.0, 1);
            r = routing::igp_routing_matrix(topo);
        });
        const std::size_t pairs = r.cols();
        p500_pairs = pairs;
        p500_links = topo.link_count();
        p500_nnz = r.nonzeros();
        // The shared operator input, exactly as the epoch cache hands
        // it to the estimators: one O(nnz) CSR transpose.
        const linalg::SparseMatrix rt = linalg::transpose(r);
        const linalg::Vector truth = synthetic_demands(topo, 99);
        core::SnapshotProblem snap;
        snap.topo = &topo;
        snap.routing = &r;
        snap.loads = r.multiply(truth);

        const std::size_t window = 4;
        const linalg::Vector alpha = traffic::fanouts_from_demands(
            topo.pop_count(), truth);
        std::mt19937_64 rng(13);
        std::uniform_real_distribution<double> dist(0.5, 2.0);
        core::SeriesProblem series;
        series.topo = &topo;
        series.routing = &r;
        const linalg::Vector totals0 =
            traffic::node_totals_from_demands(topo.pop_count(), truth);
        for (std::size_t k = 0; k < window; ++k) {
            linalg::Vector totals = totals0;
            for (double& v : totals) v *= dist(rng);
            series.loads.push_back(r.multiply(
                traffic::demands_from_fanouts(topo.pop_count(), alpha,
                                              totals)));
        }
        std::printf("  pops=500 links=%zu pairs=%zu nnz=%zu "
                    "(build %.2fs; dense pairs^2 would be %.0f GB)\n",
                    p500_links, pairs, p500_nnz, p500_build_seconds,
                    static_cast<double>(pairs) *
                        static_cast<double>(pairs) * 8.0 / 1e9);

        linalg::detail::reset_peak_matrix_allocation();
        linalg::detail::reset_total_matrix_allocation();
        const auto check_estimate = [&](const char* name,
                                        const linalg::Vector& est) {
            if (est.size() != pairs) {
                fail("500-PoP %s estimate has wrong size", name);
                p500_ok = false;
                return;
            }
            for (double v : est) {
                if (!std::isfinite(v) || v < 0.0) {
                    fail("500-PoP %s estimate not finite/nonnegative",
                         name);
                    p500_ok = false;
                    return;
                }
            }
        };

        linalg::Vector est;
        p500_gravity_seconds =
            time_best(1, [&] { est = core::gravity_estimate(snap); });
        check_estimate("gravity", est);
        const linalg::Vector prior = est;
        std::printf("  gravity   %7.2fs\n", p500_gravity_seconds);

        core::KruithofOptions kopt;
        kopt.max_iterations = 30;
        kopt.check_every = 10;
        p500_kruithof_seconds = time_best(1, [&] {
            est = core::kruithof_general(snap, prior, kopt).s;
        });
        check_estimate("kruithof", est);
        std::printf("  kruithof  %7.2fs (30 sweeps)\n",
                    p500_kruithof_seconds);

        core::EntropyOptions ent;
        ent.solver.max_iterations = 60;
        p500_entropy_seconds = time_best(1, [&] {
            est = core::entropy_estimate(snap, prior, ent);
        });
        check_estimate("entropy", est);
        std::printf("  entropy   %7.2fs (60 iters)\n",
                    p500_entropy_seconds);

        core::BayesianOptions bopt;
        bopt.operator_form = true;
        bopt.shared_routing_transpose = &rt;
        bopt.qp.cg_max_iterations = 120;
        bopt.qp.max_active_set_rounds = 6;
        p500_bayesian_seconds = time_best(1, [&] {
            est = core::bayesian_estimate(snap, prior, bopt);
        });
        check_estimate("bayesian", est);
        std::printf("  bayesian  %7.2fs (operator QP, cg<=120)\n",
                    p500_bayesian_seconds);

        core::FanoutOptions fopt;
        fopt.operator_form = true;
        fopt.shared_routing_transpose = &rt;
        fopt.qp.cg_max_iterations = 80;
        // 249500 nonneg variables need more block-pivoting rounds than
        // the 200-PoP problem: each round flips the whole infeasibility
        // set, and the set only shrinks to empty after ~a dozen flips
        // at this scale.  Headroom, not extra work — the driver stops
        // at convergence.
        fopt.qp.max_active_set_rounds = 24;
        core::FanoutResult fanout_result;
        p500_fanout_seconds = time_best(
            1, [&] { fanout_result = core::fanout_estimate(series, fopt); });
        check_estimate("fanout", fanout_result.mean_demands);
        if (fanout_result.equality_violation > 1e-6) {
            fail("500-PoP fanout equality violation %.3g > 1e-6",
                 fanout_result.equality_violation);
            p500_ok = false;
        }
        std::printf("  fanout    %7.2fs (operator QP, %zu rounds, %zu cg "
                    "iters, eq viol %.2e)\n",
                    p500_fanout_seconds, fanout_result.qp_iterations,
                    fanout_result.qp_cg_iterations,
                    fanout_result.equality_violation);

        const double p500_window_seconds =
            p500_gravity_seconds + p500_kruithof_seconds +
            p500_entropy_seconds + p500_bayesian_seconds +
            p500_fanout_seconds;
        if (p500_window_seconds > p500_budget_seconds) {
            fail("500-PoP five-method window exceeds the %.0fs budget "
                 "(%.2fs)",
                 p500_budget_seconds, p500_window_seconds);
            p500_ok = false;
        }

        // The scheduler's default schedule over a cold epoch: the
        // operator wiring must leave both quadratic Gram builds
        // untriggered after a full window.
        engine::RoutingEpochCache cache;
        const std::shared_ptr<const engine::RoutingEpoch> epoch =
            cache.acquire_shared(r);
        engine::SlidingWindow win(&topo, &r, window,
                                  /*track_load_moments=*/false);
        for (std::size_t k = 0; k < window; ++k) {
            win.push(k, series.loads[k]);
        }
        engine::MethodOptions mopts;
        mopts.bayesian.qp.cg_max_iterations = 120;
        mopts.bayesian.qp.max_active_set_rounds = 6;
        mopts.fanout.qp.cg_max_iterations = 80;
        mopts.fanout.qp.max_active_set_rounds = 24;
        engine::EstimatorScheduler scheduler(
            {engine::Method::gravity, engine::Method::bayesian,
             engine::Method::fanout},
            mopts, /*threads=*/0, /*warm_start=*/true,
            /*min_series_window=*/3);
        engine::WindowResult wres;
        p500_scheduler_seconds =
            time_best(1, [&] { wres = scheduler.run(win, epoch); });
        for (const engine::MethodRun& run : wres.runs) {
            check_estimate("scheduler", run.estimate);
        }
        if (wres.runs.size() != 3) {
            fail("500-PoP scheduler window ran %zu methods, expected 3",
                 wres.runs.size());
            p500_ok = false;
        }
        p500_sparse_gram_built = epoch->sparse_gram_built();
        p500_gram_built = epoch->gram_built();
        p500_transpose_built = epoch->routing_transpose_built();
        std::printf("  scheduler %7.2fs (default schedule; sparse gram "
                    "built=%s, dense gram built=%s, R' built=%s)\n",
                    p500_scheduler_seconds,
                    p500_sparse_gram_built ? "YES" : "no",
                    p500_gram_built ? "YES" : "no",
                    p500_transpose_built ? "yes" : "NO");
        if (p500_sparse_gram_built || p500_gram_built) {
            fail("500-PoP default schedule triggered a pairs^2 Gram "
                 "build (sparse=%d dense=%d)",
                 p500_sparse_gram_built ? 1 : 0, p500_gram_built ? 1 : 0);
            p500_ok = false;
        }
        if (!p500_transpose_built) {
            fail("500-PoP default schedule never built the shared "
                 "routing transpose — the operator wiring is not "
                 "engaged");
            p500_ok = false;
        }

        p500_peak_alloc_bytes =
            linalg::detail::peak_matrix_allocation_bytes();
        p500_total_alloc_bytes =
            linalg::detail::total_matrix_allocation_bytes();
        std::printf("  peak dense Matrix allocation: %.2f MB, cumulative "
                    "churn %.2f MB (limit 10 MB; dense pairs^2 %.0f GB)\n",
                    static_cast<double>(p500_peak_alloc_bytes) / 1e6,
                    static_cast<double>(p500_total_alloc_bytes) / 1e6,
                    static_cast<double>(pairs) *
                        static_cast<double>(pairs) * 8.0 / 1e9);
        if (p500_peak_alloc_bytes >= p500_peak_alloc_limit) {
            fail("a dense allocation >= 10 MB happened inside the "
                 "500-PoP Gram-free window (%zu bytes)",
                 p500_peak_alloc_bytes);
            p500_ok = false;
        }
    }

    // ---- JSON record -------------------------------------------------
    obs::Report report("bench_perf_solvers");
    report.set("gemm_n", gemm_n);
    report.set("gemm_naive_seconds", gemm_naive_s);
    report.set("gemm_blocked_seconds", gemm_blocked_s);
    report.set("gemm_speedup", gemm_speedup);
    report.set("gemm_bitwise", gemm_bitwise);
    {
        obs::Json cholesky = obs::Json::array();
        for (const CholeskyPoint& pt : chol_points) {
            obs::Json entry = obs::Json::object();
            entry.set("n", pt.n);
            entry.set("unblocked_seconds", pt.unblocked_seconds);
            entry.set("blocked_seconds", pt.blocked_seconds);
            entry.set("speedup", pt.speedup);
            entry.set("max_factor_diff", pt.max_factor_diff);
            cholesky.push_back(std::move(entry));
        }
        report.set("cholesky", std::move(cholesky));
    }
    report.set("cholesky_gate_speedup", chol_gate_speedup);
    {
        obs::Json scaling = obs::Json::array();
        for (const ScalePoint& pt : scale_points) {
            obs::Json entry = obs::Json::object();
            entry.set("pops", pt.pops);
            entry.set("links", pt.links);
            entry.set("pairs", pt.pairs);
            entry.set("nnz", pt.nonzeros);
            entry.set("routing_build_seconds", pt.routing_build_seconds);
            entry.set("gemv_dense_seconds", pt.gemv_dense_seconds);
            entry.set("gemv_sparse_seconds", pt.gemv_sparse_seconds);
            entry.set("gemv_transpose_dense_seconds",
                      pt.gemv_t_dense_seconds);
            entry.set("gemv_transpose_sparse_seconds",
                      pt.gemv_t_sparse_seconds);
            entry.set("gram_measured", pt.gram_measured);
            entry.set("gram_reference_seconds", pt.gram_reference_seconds);
            entry.set("gram_dense_seconds", pt.gram_dense_seconds);
            entry.set("gram_sparse_seconds", pt.gram_sparse_seconds);
            entry.set("gram_csr_seconds", pt.gram_csr_seconds);
            entry.set("gram_csr_nnz", pt.gram_csr_nnz);
            entry.set("gram_csr_speedup_vs_reference", pt.gram_speedup);
            entry.set("gram_dense_out_speedup_vs_reference",
                      pt.gram_speedup_dense_out);
            entry.set("gram_exact", pt.gram_exact);
            scaling.push_back(std::move(entry));
        }
        report.set("scaling", std::move(scaling));
    }
    report.set("gram_gate_speedup", gram_gate_speedup);
    report.set("bayesian_max_diff", bayes_worst);
    report.set("vardi_max_diff", vardi_worst);
    report.set("paper_gram_exact", paper_gram_exact);
    report.set("kruithof_reference_seconds", kruithof_ref_seconds);
    report.set("kruithof_fast_seconds", kruithof_fast_seconds);
    report.set("kruithof_speedup", kruithof_speedup);
    report.set("kruithof_rel_diff", kruithof_rel_diff);
    report.set("ipf_reference_seconds", ipf_ref_seconds);
    report.set("ipf_fast_seconds", ipf_fast_seconds);
    report.set("ipf_bitwise", ipf_bitwise);
    report.set("entropy_window_seconds", entropy_window_seconds);
    report.set("entropy_reference_seconds", entropy_ref_seconds);
    report.set("entropy_speedup", entropy_speedup);
    report.set("entropy_budget_seconds", entropy_budget_seconds);
    report.set("entropy_paper_rel_diff", entropy_paper_diff);
    report.set("fanout_paper_rel_diff", fanout_paper_rel_diff);
    report.set("vardi_operator_bitwise", vardi_operator_bitwise);
    report.set("vardi_operator_max_diff", vardi_operator_worst);
    report.set("bayesian_operator_bitwise", bayes_operator_bitwise);
    report.set("bayesian_operator_max_diff", bayes_operator_worst);
    report.set("fanout_operator_bitwise", fanout_operator_bitwise);
    report.set("fanout_operator_max_diff", fanout_operator_worst);
    report.set("p200_gravity_seconds", p200_gravity_seconds);
    report.set("p200_kruithof_seconds", p200_kruithof_seconds);
    report.set("p200_entropy_seconds", p200_entropy_seconds);
    report.set("p200_bayesian_seconds", p200_bayesian_seconds);
    report.set("p200_bayesian_factored_seconds",
               p200_bayesian_factored_seconds);
    report.set("p200_bayesian_operator_delta",
               p200_bayesian_operator_delta);
    report.set("p200_fanout_seconds", p200_fanout_seconds);
    report.set("p200_fanout_factored_seconds",
               p200_fanout_factored_seconds);
    report.set("p200_fanout_operator_delta", p200_fanout_operator_delta);
    report.set("p200_vardi_seconds", p200_vardi_seconds);
    report.set("p200_vardi_warm_rel_diff", p200_vardi_warm_rel_diff);
    report.set("p200_peak_alloc_bytes", p200_peak_alloc_bytes);
    report.set("p200_total_alloc_bytes", p200_total_alloc_bytes);
    report.set("p200_ok", p200_ok);
    report.set("p500_pairs", p500_pairs);
    report.set("p500_links", p500_links);
    report.set("p500_nnz", p500_nnz);
    report.set("p500_build_seconds", p500_build_seconds);
    report.set("p500_gravity_seconds", p500_gravity_seconds);
    report.set("p500_kruithof_seconds", p500_kruithof_seconds);
    report.set("p500_entropy_seconds", p500_entropy_seconds);
    report.set("p500_bayesian_seconds", p500_bayesian_seconds);
    report.set("p500_fanout_seconds", p500_fanout_seconds);
    report.set("p500_scheduler_seconds", p500_scheduler_seconds);
    report.set("p500_budget_seconds", p500_budget_seconds);
    report.set("p500_peak_alloc_bytes", p500_peak_alloc_bytes);
    report.set("p500_total_alloc_bytes", p500_total_alloc_bytes);
    report.set("p500_sparse_gram_built", p500_sparse_gram_built);
    report.set("p500_gram_built", p500_gram_built);
    report.set("p500_routing_transpose_built", p500_transpose_built);
    report.set("p500_ok", p500_ok);
    report.set("contracts_compiled", check::contracts_compiled());
    report.set("contracts_armed_seconds", contracts_armed_seconds);
    report.set("contracts_suspended_seconds", contracts_suspended_seconds);
    report.set("contracts_bitwise", contracts_bitwise);
    report.set("pass", g_ok);
    if (report.write_file(json_path)) {
        std::printf("\nwrote %s\n", json_path.c_str());
    } else {
        std::printf("\nWARNING: could not write %s\n", json_path.c_str());
    }

    if (g_ok) {
        std::printf("\nPASS: blocked kernels bitwise/1e-12-exact "
                    "(cholesky %.2fx at n>=1000), sparse Gram %.2fx at "
                    "100 PoPs, estimators match the dense path\n",
                    chol_gate_speedup, gram_gate_speedup);
    }
    return g_ok ? 0 : 1;
}
