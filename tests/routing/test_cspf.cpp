#include "routing/cspf.hpp"

#include <gtest/gtest.h>

#include "topology/builders.hpp"

namespace tme::routing {
namespace {

topology::Topology diamond() {
    topology::Topology t;
    for (const char* name : {"A", "B", "C", "D"}) {
        t.add_pop({name, 0.0, 0.0, 1.0, topology::PopRole::access});
    }
    t.add_core_link(0, 1, 100.0, 1.0);  // cheap path, low capacity
    t.add_core_link(1, 3, 100.0, 1.0);
    t.add_core_link(0, 2, 1000.0, 5.0);  // expensive path, high capacity
    t.add_core_link(2, 3, 1000.0, 5.0);
    return t;
}

TEST(BandwidthLedger, TracksReservations) {
    const topology::Topology t = diamond();
    BandwidthLedger ledger(t);
    EXPECT_DOUBLE_EQ(ledger.available(t.core_links()[0]), 100.0);
    ledger.reserve({t.core_links()[0]}, 60.0);
    EXPECT_DOUBLE_EQ(ledger.available(t.core_links()[0]), 40.0);
    EXPECT_TRUE(ledger.can_fit(t.core_links()[0], 40.0));
    EXPECT_FALSE(ledger.can_fit(t.core_links()[0], 41.0));
    EXPECT_THROW(ledger.reserve({t.core_links()[0]}, 41.0),
                 std::logic_error);
}

TEST(BandwidthLedger, MaxUtilizationScalesCapacity) {
    const topology::Topology t = diamond();
    BandwidthLedger ledger(t, 0.5);
    EXPECT_DOUBLE_EQ(ledger.available(t.core_links()[0]), 50.0);
    EXPECT_THROW(BandwidthLedger(t, 0.0), std::invalid_argument);
}

TEST(Cspf, PrefersCheapPathWhenItFits) {
    const topology::Topology t = diamond();
    BandwidthLedger ledger(t);
    const auto lsp = route_lsp(t, ledger, 0, 3, 80.0);
    ASSERT_TRUE(lsp.has_value());
    EXPECT_TRUE(lsp->constrained);
    EXPECT_EQ(t.link(lsp->path[0]).dst, 1u);  // via B
}

TEST(Cspf, DivertsWhenCheapPathIsFull) {
    const topology::Topology t = diamond();
    BandwidthLedger ledger(t);
    ASSERT_TRUE(route_lsp(t, ledger, 0, 3, 80.0).has_value());
    // Second LSP of 80 no longer fits on the 100-capacity path.
    const auto second = route_lsp(t, ledger, 0, 3, 80.0);
    ASSERT_TRUE(second.has_value());
    EXPECT_TRUE(second->constrained);
    EXPECT_EQ(t.link(second->path[0]).dst, 2u);  // via C
}

TEST(Cspf, FallsBackToIgpWhenNothingFits) {
    const topology::Topology t = diamond();
    BandwidthLedger ledger(t);
    const auto lsp = route_lsp(t, ledger, 0, 3, 5000.0);
    ASSERT_TRUE(lsp.has_value());
    EXPECT_FALSE(lsp->constrained);
    EXPECT_EQ(t.link(lsp->path[0]).dst, 1u);  // IGP shortest
}

TEST(Cspf, NoFallbackReturnsNullopt) {
    const topology::Topology t = diamond();
    BandwidthLedger ledger(t);
    CspfOptions options;
    options.fallback_to_igp = false;
    EXPECT_FALSE(route_lsp(t, ledger, 0, 3, 5000.0, options).has_value());
}

TEST(LspMesh, CoversAllPairsInOrder) {
    const topology::Topology t = topology::europe_backbone();
    std::vector<double> bw(t.pair_count(), 10.0);
    const std::vector<Lsp> mesh = build_lsp_mesh(t, bw);
    ASSERT_EQ(mesh.size(), t.pair_count());
    for (std::size_t p = 0; p < mesh.size(); ++p) {
        const auto [src, dst] = t.pair_nodes(p);
        EXPECT_EQ(mesh[p].src, src);
        EXPECT_EQ(mesh[p].dst, dst);
        EXPECT_TRUE(path_is_valid(t, src, dst, mesh[p].path));
    }
}

TEST(LspMesh, ReservationsNeverExceedCapacity) {
    const topology::Topology t = topology::us_backbone();
    // Heavy but feasible-ish demands; constrained LSPs must respect
    // capacities exactly.
    std::vector<double> bw(t.pair_count(), 0.0);
    for (std::size_t p = 0; p < bw.size(); ++p) {
        bw[p] = 20.0 + static_cast<double>(p % 7) * 15.0;
    }
    const std::vector<Lsp> mesh = build_lsp_mesh(t, bw);
    std::vector<double> reserved(t.link_count(), 0.0);
    for (const Lsp& lsp : mesh) {
        if (!lsp.constrained) continue;
        for (std::size_t lid : lsp.path) reserved[lid] += lsp.bandwidth_mbps;
    }
    for (std::size_t lid : t.core_links()) {
        EXPECT_LE(reserved[lid], t.link(lid).capacity_mbps + 1e-6);
    }
}

TEST(LspMesh, BandwidthSizeMismatchThrows) {
    const topology::Topology t = diamond();
    EXPECT_THROW(build_lsp_mesh(t, std::vector<double>(3, 1.0)),
                 std::invalid_argument);
}

TEST(LspMesh, DeterministicPlacement) {
    const topology::Topology t = topology::europe_backbone();
    std::vector<double> bw(t.pair_count());
    for (std::size_t p = 0; p < bw.size(); ++p) {
        bw[p] = 5.0 + static_cast<double>(p % 11);
    }
    const std::vector<Lsp> a = build_lsp_mesh(t, bw);
    const std::vector<Lsp> b = build_lsp_mesh(t, bw);
    for (std::size_t p = 0; p < a.size(); ++p) {
        EXPECT_EQ(a[p].path, b[p].path);
    }
}

}  // namespace
}  // namespace tme::routing
