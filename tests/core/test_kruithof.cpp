#include "core/kruithof.hpp"

#include <gtest/gtest.h>

#include "linalg/entropy_solver.hpp"
#include "test_helpers.hpp"
#include "traffic/traffic_matrix.hpp"

namespace tme::core {
namespace {

using testing::SmallNetwork;
using testing::tiny_network;

TEST(KruithofIpf, MatchesMarginalsExactly) {
    const std::size_t n = 4;
    linalg::Vector prior(n * (n - 1), 1.0);
    const linalg::Vector rows{4.0, 3.0, 2.0, 1.0};
    const linalg::Vector cols{1.0, 2.0, 3.0, 4.0};
    const KruithofResult r = kruithof_ipf(n, prior, rows, cols);
    EXPECT_TRUE(r.converged);
    traffic::TrafficMatrix tm(n, r.s);
    const linalg::Vector rt = tm.row_totals();
    const linalg::Vector ct = tm.col_totals();
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(rt[i], rows[i], 1e-8);
        EXPECT_NEAR(ct[i], cols[i], 1e-8);
    }
}

TEST(KruithofIpf, FixedPointWhenPriorAlreadyConsistent) {
    const std::size_t n = 3;
    linalg::Vector prior(n * (n - 1), 2.0);
    traffic::TrafficMatrix tm(n, prior);
    const KruithofResult r =
        kruithof_ipf(n, prior, tm.row_totals(), tm.col_totals());
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.iterations, 2u);
    for (std::size_t p = 0; p < prior.size(); ++p) {
        EXPECT_NEAR(r.s[p], prior[p], 1e-9);
    }
}

TEST(KruithofIpf, RejectsDisagreeingTotals) {
    linalg::Vector prior(6, 1.0);
    EXPECT_THROW(
        kruithof_ipf(3, prior, {1.0, 1.0, 1.0}, {5.0, 5.0, 5.0}),
        std::invalid_argument);
}

TEST(KruithofIpf, PreservesPriorZeros) {
    // Multiplicative scaling can never resurrect a zero prior entry.
    const std::size_t n = 3;
    linalg::Vector prior(n * (n - 1), 1.0);
    prior[0] = 0.0;  // demand 0->1
    traffic::TrafficMatrix seed_tm(n, linalg::Vector(n * (n - 1), 1.0));
    const KruithofResult r = kruithof_ipf(
        n, prior, seed_tm.row_totals(), seed_tm.col_totals());
    EXPECT_DOUBLE_EQ(r.s[0], 0.0);
}

TEST(KruithofGeneral, SolvesConsistentSystem) {
    const SmallNetwork net = tiny_network();
    const SnapshotProblem snap = net.snapshot();
    linalg::Vector prior(net.truth.size(), 1.0);
    KruithofOptions options;
    options.max_iterations = 3000;
    options.tolerance = 1e-9;
    const KruithofResult r = kruithof_general(snap, prior, options);
    EXPECT_TRUE(r.converged) << "violation " << r.max_violation;
    const linalg::Vector pred = net.routing.multiply(r.s);
    for (std::size_t l = 0; l < pred.size(); ++l) {
        EXPECT_NEAR(pred[l], snap.loads[l],
                    1e-6 * (1.0 + snap.loads[l]));
    }
}

TEST(KruithofGeneral, MinimizesKlAmongFeasible) {
    // Krupp's theorem: the iteration converges to the KL-closest
    // feasible point.  Compare against the entropy solver with tiny
    // data weight... instead compare KL divergence against a few other
    // feasible points: the truth itself must not beat it by KL.
    const SmallNetwork net = tiny_network(3);
    const SnapshotProblem snap = net.snapshot();
    linalg::Vector prior(net.truth.size(), 1.0);
    KruithofOptions options;
    options.max_iterations = 5000;
    const KruithofResult r = kruithof_general(snap, prior, options);
    ASSERT_TRUE(r.converged);
    EXPECT_LE(linalg::generalized_kl(r.s, prior),
              linalg::generalized_kl(net.truth, prior) + 1e-6);
}

TEST(KruithofGeneral, ZeroLoadZerosDemands) {
    const SmallNetwork net = tiny_network();
    SnapshotProblem snap = net.snapshot();
    // Zero out one ingress link: all demands from that PoP must go to 0.
    const std::size_t link = net.topo.ingress_link(0);
    snap.loads[link] = 0.0;
    linalg::Vector prior(net.truth.size(), 1.0);
    const KruithofResult r = kruithof_general(snap, prior);
    for (std::size_t m = 1; m < net.topo.pop_count(); ++m) {
        EXPECT_DOUBLE_EQ(r.s[net.topo.pair_index(0, m)], 0.0);
    }
}

TEST(KruithofGeneral, RejectsBadPrior) {
    const SmallNetwork net = tiny_network();
    EXPECT_THROW(
        kruithof_general(net.snapshot(), linalg::Vector(3, 1.0)),
        std::invalid_argument);
    EXPECT_THROW(
        kruithof_general(net.snapshot(),
                         linalg::Vector(net.truth.size(), 0.0)),
        std::invalid_argument);
}

}  // namespace
}  // namespace tme::core
