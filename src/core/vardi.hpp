// Vardi's Poissonian moment-matching estimator (paper Section 4.2.2;
// Vardi 1996).
//
// Under s_p ~ Poisson(lambda_p), link loads satisfy E{t} = R lambda and
// Cov{t} = R diag(lambda) R'.  Matching sample moments in least squares
// (Csiszar's argument for LS over KL when observations may be negative)
// gives
//
//   minimize  ||R lambda - that||^2
//             + w * || R diag(lambda) R' - Sigmahat ||_F^2,  lambda >= 0
//
// with w = sigma^{-2} in [0, 1] expressing faith in the Poisson
// assumption.  Both terms are linear in lambda, so this is one big NNLS;
// the second-moment block has L^2 rows but its Gram contribution has the
// closed form (R'R) .* (R'R), and its right-hand side is
// q_p = r_p' Sigmahat r_p — so the problem is solved entirely in Gram
// form without materializing the stacked matrix.
#pragma once

#include "core/problem.hpp"
#include "linalg/budget.hpp"
#include "obs/counters.hpp"

namespace tme::core {

struct VardiOptions {
    /// Weight w = sigma^{-2} on the second-moment equations (paper uses
    /// 0.01 and 1 in Table 1).
    double second_moment_weight = 1.0;
    /// Optional precomputed Gram matrix R'R; MUST equal
    /// problem.routing->gram().  Not owned.
    const linalg::Matrix* shared_gram = nullptr;
    /// Optional precomputed *transformed* Gram G1 + w * (G1 .* G1) with
    /// G1 = R'R and w = second_moment_weight (the engine caches it per
    /// routing epoch).  When set, the O(P^2) copy-and-transform of the
    /// Gram matrix is skipped entirely and shared_gram is ignored.
    /// MUST match second_moment_weight.  Not owned.
    const linalg::Matrix* shared_transformed_gram = nullptr;
    /// Optional precomputed window moments: mean_loads = mean_k t[k] and
    /// load_covariance = the K-normalized sample covariance of the
    /// window (linalg::sample_mean / sample_covariance conventions).  The
    /// online engine maintains these incrementally as the window slides
    /// instead of recomputing the O(K L^2) covariance per window.
    /// Either both or neither must be set.  Not owned.
    const linalg::Vector* mean_loads = nullptr;
    const linalg::Matrix* load_covariance = nullptr;
    /// Gram-free solve: the transformed Gram G1 + w * (G1 .* G1) is
    /// never materialized — not densely, not in CSR.  Columns are
    /// generated on demand from R and R' (linalg::gram_column) with the
    /// entrywise transform applied per support entry, and the NNLS runs
    /// its factored passive-set solve over them.  Because the generated
    /// columns replay the Gram kernels' accumulation order and the
    /// transform is the dense loop's expression, the estimate is
    /// bit-for-bit the dense path's wherever both can run.  When set,
    /// shared_gram / shared_transformed_gram are ignored.
    bool operator_form = false;
    /// Optional precomputed CSR transpose of the routing matrix; MUST
    /// equal linalg::transpose(*problem.routing).  Only read by the
    /// operator_form path (the engine caches it per routing epoch);
    /// derived on the fly when absent.  Not owned.
    const linalg::SparseMatrix* shared_routing_transpose = nullptr;
    /// Optional warm start for the NNLS (previous window's lambda).
    const linalg::Vector* warm_start = nullptr;
    /// Optional iteration telemetry sink: the moment-matching NNLS adds
    /// its pivots on return.  Not owned; must outlive the call.
    obs::SolverCounters* counters = nullptr;
    /// Optional cooperative deadline, forwarded to the NNLS.  A tripped
    /// budget yields the current primal-feasible iterate; the caller
    /// reads budget->expired() afterwards to learn the solve was cut.
    /// Not owned; must outlive the call.
    linalg::SolveBudget* budget = nullptr;
};

struct VardiResult {
    linalg::Vector lambda;          ///< estimated mean rates
    double first_moment_residual = 0.0;   ///< ||R lambda - that||_2
    double second_moment_residual = 0.0;  ///< ||R diag(l) R' - Sigmahat||_F
};

/// Estimates lambda from a window of load measurements.
VardiResult vardi_estimate(const SeriesProblem& problem,
                           const VardiOptions& options = {});

}  // namespace tme::core
