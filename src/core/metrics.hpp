// Estimation quality metrics (paper Section 5.3.1).
//
// The headline metric is the mean relative error over large demands
// (eq. 8):
//
//     MRE = (1/N_T) * sum_{i : s_i > s_T} | (shat_i - s_i) / s_i |
//
// with the threshold s_T chosen so that demands above it carry ~90% of
// total traffic (29 demands in the paper's European network, 155 in the
// American one).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/vector_ops.hpp"

namespace tme::core {

/// Threshold such that demands strictly greater than it carry at least
/// `coverage` (default 0.9) of total traffic; picks the smallest such set
/// of largest demands.  Throws on empty or all-zero input.
double threshold_for_coverage(const linalg::Vector& true_demands,
                              double coverage = 0.9);

/// Indices of demands strictly above the threshold, descending by size.
std::vector<std::size_t> demands_above(const linalg::Vector& true_demands,
                                       double threshold);

/// Mean relative error over demands above `threshold` (eq. 8).
double mean_relative_error(const linalg::Vector& true_demands,
                           const linalg::Vector& estimate, double threshold);

/// Convenience: MRE with threshold at the given coverage.
double mre_at_coverage(const linalg::Vector& true_demands,
                       const linalg::Vector& estimate, double coverage = 0.9);

/// Root-mean-square error over all demands.
double rmse(const linalg::Vector& true_demands,
            const linalg::Vector& estimate);

}  // namespace tme::core
