// EngineMetrics under concurrency: counters are atomics and the
// per-method map is pre-populated, so a reader polling (or copying)
// the metrics while another thread ingests must never see torn values,
// only monotonically growing counters.  Run under ThreadSanitizer this
// also proves the absence of data races on the metrics path.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "engine/fleet.hpp"
#include "engine/replay.hpp"

namespace tme::engine {
namespace {

TEST(EngineMetricsStress, ConcurrentReadersSeeMonotonicUntornCounters) {
    scenario::Scenario sc =
        scenario::make_scenario(scenario::Network::europe);
    constexpr std::size_t kSamples = 60;
    sc.demands.resize(kSamples);
    sc.loads.resize(kSamples);

    EngineConfig config;
    config.window_size = 6;
    config.methods = {Method::gravity, Method::bayesian, Method::fanout};
    OnlineEngine engine(sc.topo, sc.routing, config);
    const EngineMetrics& live = engine.metrics();

    std::atomic<bool> done{false};
    std::atomic<std::size_t> reads{0};
    auto reader = [&] {
        std::size_t last_samples = 0;
        std::size_t last_windows = 0;
        std::size_t last_bayesian_runs = 0;
        while (!done.load(std::memory_order_acquire)) {
            // Snapshot by copy while the writer is mid-flight: the
            // copy itself must be race-free (atomic loads per field).
            const EngineMetrics snap = live;
            const std::size_t samples = snap.samples_ingested.load();
            const std::size_t windows = snap.windows_run.load();
            // Monotonicity: a torn or half-written counter would show
            // up as a value jumping backwards or past the stream end.
            EXPECT_GE(samples, last_samples);
            EXPECT_GE(windows, last_windows);
            EXPECT_LE(samples, kSamples);
            EXPECT_LE(windows, samples);
            last_samples = samples;
            last_windows = windows;
            const auto it = snap.methods.find(Method::bayesian);
            // Pre-populated map: every scheduled method is present
            // from construction, even before its first run.
            ASSERT_NE(it, snap.methods.end());
            const std::size_t runs = it->second.runs.load();
            EXPECT_GE(runs, last_bayesian_runs);
            EXPECT_LE(runs, kSamples);
            last_bayesian_runs = runs;
            EXPECT_GE(it->second.total_seconds.load(), 0.0);
            // summary() walks everything; it must be safe mid-stream.
            EXPECT_FALSE(snap.summary().empty());
            ++reads;
        }
    };

    std::vector<std::thread> readers;
    for (int r = 0; r < 2; ++r) readers.emplace_back(reader);
    const ReplayResult result = replay_scenario(engine, sc);
    done.store(true, std::memory_order_release);
    for (std::thread& t : readers) t.join();

    EXPECT_EQ(result.windows.size(), kSamples);
    EXPECT_GT(reads.load(), 0u);
    EXPECT_EQ(live.samples_ingested.load(), kSamples);
    EXPECT_EQ(live.windows_run.load(), kSamples);
    EXPECT_EQ(live.methods.at(Method::bayesian).runs.load(), kSamples);
}

TEST(EngineMetricsStress, FleetAggregationReadsLiveEngines) {
    // The fleet path: metrics snapshots are taken per job while other
    // jobs' engines are still writing theirs — every copy below
    // happens concurrently with live updates elsewhere in the fleet.
    scenario::Scenario sc =
        scenario::make_scenario(scenario::Network::europe);
    sc.demands.resize(24);
    sc.loads.resize(24);
    FleetConfig config;
    config.engine.window_size = 6;
    config.engine.methods = {Method::gravity, Method::bayesian};
    config.concurrency = 3;
    FleetDriver driver(sc.topo, config);
    std::vector<FleetJob> jobs(3);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        jobs[j].name = "job" + std::to_string(j);
        jobs[j].scenario = &sc;
    }
    const FleetReport report = driver.run(jobs);
    for (const FleetJobReport& job : report.jobs) {
        EXPECT_EQ(job.metrics.samples_ingested.load(), 24u);
        EXPECT_EQ(job.metrics.windows_run.load(), 24u);
    }
}

}  // namespace
}  // namespace tme::engine
