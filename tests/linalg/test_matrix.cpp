#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <random>

namespace tme::linalg {
namespace {

TEST(Matrix, ConstructAndAccess) {
    Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
    m(0, 1) = -2.0;
    EXPECT_DOUBLE_EQ(m.at(0, 1), -2.0);
    EXPECT_THROW(m.at(2, 0), std::out_of_range);
}

TEST(Matrix, InitializerList) {
    Matrix m{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
    EXPECT_THROW((Matrix{{1.0}, {1.0, 2.0}}), std::invalid_argument);
}

TEST(Matrix, Identity) {
    Matrix i = Matrix::identity(3);
    EXPECT_DOUBLE_EQ(i(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(i(2, 2), 1.0);
}

TEST(Matrix, Diagonal) {
    Matrix d = Matrix::diagonal({2.0, 3.0});
    EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
    EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Matrix, RowColAccess) {
    Matrix m{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_EQ(m.row(0), (Vector{1.0, 2.0}));
    EXPECT_EQ(m.col(1), (Vector{2.0, 4.0}));
    m.set_row(0, {5.0, 6.0});
    EXPECT_DOUBLE_EQ(m(0, 0), 5.0);
    m.set_col(0, {7.0, 8.0});
    EXPECT_DOUBLE_EQ(m(1, 0), 8.0);
    EXPECT_THROW(m.set_row(0, {1.0}), std::invalid_argument);
}

TEST(Matrix, Transposed) {
    Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
    Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, Gemv) {
    Matrix m{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_EQ(gemv(m, {1.0, 1.0}), (Vector{3.0, 7.0}));
    EXPECT_EQ(gemv_transpose(m, {1.0, 1.0}), (Vector{4.0, 6.0}));
    EXPECT_THROW(gemv(m, {1.0}), std::invalid_argument);
}

TEST(Matrix, Gemm) {
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    Matrix b{{0.0, 1.0}, {1.0, 0.0}};
    Matrix c = gemm(a, b);
    EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(Matrix, GramMatchesExplicitProduct) {
    std::mt19937_64 rng(42);
    std::uniform_real_distribution<double> dist(-2.0, 2.0);
    Matrix a(7, 5);
    for (std::size_t i = 0; i < 7; ++i) {
        for (std::size_t j = 0; j < 5; ++j) a(i, j) = dist(rng);
    }
    const Matrix g = gram(a);
    const Matrix expected = gemm(a.transposed(), a);
    EXPECT_LT(max_abs_diff(g, expected), 1e-12);
}

TEST(Matrix, AddAndVstack) {
    Matrix a{{1.0, 2.0}};
    Matrix b{{3.0, 4.0}};
    Matrix c = add(2.0, a, -1.0, b);
    EXPECT_DOUBLE_EQ(c(0, 0), -1.0);
    Matrix v = vstack(a, b);
    EXPECT_EQ(v.rows(), 2u);
    EXPECT_DOUBLE_EQ(v(1, 1), 4.0);
    EXPECT_THROW(vstack(a, Matrix(1, 3)), std::invalid_argument);
}

TEST(Matrix, Norms) {
    Matrix m{{3.0, 0.0}, {0.0, -4.0}};
    EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
    EXPECT_DOUBLE_EQ(m.max_abs(), 4.0);
}

TEST(Matrix, GemvTransposeAgreesWithExplicitTranspose) {
    std::mt19937_64 rng(7);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    Matrix a(6, 4);
    Vector x(6);
    for (std::size_t i = 0; i < 6; ++i) {
        x[i] = dist(rng);
        for (std::size_t j = 0; j < 4; ++j) a(i, j) = dist(rng);
    }
    const Vector y1 = gemv_transpose(a, x);
    const Vector y2 = gemv(a.transposed(), x);
    for (std::size_t j = 0; j < 4; ++j) EXPECT_NEAR(y1[j], y2[j], 1e-12);
}

}  // namespace
}  // namespace tme::linalg
