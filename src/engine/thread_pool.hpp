// Minimal fixed-size thread pool for the estimator scheduler.
//
// One engine window fans its per-method estimation tasks out as a batch
// and waits for completion; batches never overlap, so the pool only
// needs a shared queue and a pending counter.  Constructed with zero
// threads it degrades to inline execution, which keeps single-threaded
// runs deterministic and trivially debuggable.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tme::engine {

class ThreadPool {
  public:
    explicit ThreadPool(std::size_t threads) {
        workers_.reserve(threads);
        for (std::size_t i = 0; i < threads; ++i) {
            workers_.emplace_back([this] { worker(); });
        }
    }

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    ~ThreadPool() {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        work_cv_.notify_all();
        for (std::thread& t : workers_) t.join();
    }

    std::size_t thread_count() const { return workers_.size(); }

    /// Runs all tasks and blocks until every one has finished.  Tasks
    /// must not throw (the scheduler wraps them to capture exceptions).
    void run_batch(std::vector<std::function<void()>> tasks) {
        if (workers_.empty()) {
            for (auto& task : tasks) task();
            return;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            for (auto& task : tasks) queue_.push(std::move(task));
            pending_ += tasks.size();
        }
        work_cv_.notify_all();
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [this] { return pending_ == 0; });
    }

  private:
    void worker() {
        while (true) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                work_cv_.wait(lock,
                              [this] { return stop_ || !queue_.empty(); });
                if (stop_ && queue_.empty()) return;
                task = std::move(queue_.front());
                queue_.pop();
            }
            task();
            {
                std::lock_guard<std::mutex> lock(mutex_);
                if (--pending_ == 0) done_cv_.notify_all();
            }
        }
    }

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    std::size_t pending_ = 0;
    bool stop_ = false;
};

}  // namespace tme::engine
