// Time-series traffic generation: 24 hours of 5-minute traffic matrices.
//
// Temporal model (calibrated to paper Sections 5.2.1-5.2.3):
//
//   s_p[k] ~ Gamma(mean = lambda_p * f_src(p)(t_k),
//                  var  = phi * mean^c)
//
//  * lambda_p is the busy-hour mean from the spatial demand model;
//  * f_src is a diurnal factor per source PoP — a continent-wide profile
//    shifted by the PoP's longitude (timezones), producing Fig. 1's
//    staggered busy periods and keeping each source's fanouts constant
//    in expectation (Figs. 4-5: fanouts much more stable than demands);
//  * the Gamma marginal reproduces the mean-variance scaling law
//    Var{s_p} = phi * lambda^c of Fig. 6 exactly, with CV growing as
//    demand shrinks (small demands relatively noisier, so their fanouts
//    fluctuate more — the paper's footnote on small-demand fanouts).
//
// A separate Poisson generator supports the synthetic study of Fig. 12.
#pragma once

#include <vector>

#include "linalg/vector_ops.hpp"
#include "topology/topology.hpp"
#include "traffic/diurnal.hpp"

namespace tme::traffic {

struct ScalingLawNoiseConfig {
    double phi = 0.003;  ///< Var = phi * mean^c in normalized units
    double c = 1.6;      ///< scaling exponent (Poisson would be 1)
};

struct SeriesConfig {
    DiurnalProfile profile;       ///< continent-wide day shape
    double reference_longitude = 0.0;
    /// Peak-time shift per degree of longitude west of the reference
    /// (4 min/degree is solar time).
    double minutes_per_degree = 4.0;
    /// Per-source day-shape diversity in [0, 1]: PoPs serve different
    /// customer mixes (residential vs hosting vs enterprise), so their
    /// trough depth and busy-period sharpness differ.  This makes the
    /// per-source totals te(n)[k] vary DIFFERENTIALLY over a window,
    /// which is what renders the constant-fanout system identifiable
    /// (paper Section 4.2.4: "the system of equations becomes
    /// overdetermined already for a window length of 3").  Fanouts stay
    /// exactly constant because the modulation is per source.
    double per_source_profile_diversity = 0.5;
    ScalingLawNoiseConfig noise;
    unsigned seed = 99;
    std::size_t samples = samples_per_day;  ///< 288 = 24 h of 5-min bins
};

/// One traffic matrix (pair vector) per 5-minute sample.
std::vector<linalg::Vector> generate_series(const topology::Topology& topo,
                                            const linalg::Vector& base_mean,
                                            const SeriesConfig& config);

/// The noiseless mean of sample k (for tests and calibration).
linalg::Vector series_mean_at(const topology::Topology& topo,
                              const linalg::Vector& base_mean,
                              const SeriesConfig& config, std::size_t k);

/// Independent Poisson demands: s_p[k] ~ Poisson(scale * lambda_p) / scale.
/// Used by the Fig. 12 study ("synthetic traffic matrices with Poisson
/// distributed elements with the calculated mean"); `scale` converts
/// normalized demands to count units (packets per interval).
std::vector<linalg::Vector> generate_poisson_series(
    const linalg::Vector& lambda, double scale, std::size_t samples,
    unsigned seed);

}  // namespace tme::traffic
