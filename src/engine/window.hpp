// Ring-buffered sliding window over streaming link-load samples.
//
// The window owns a chronological core::SeriesProblem view that is
// maintained *incrementally*: each push appends the newest sample,
// evicts the oldest once the capacity is reached, and rank-one
// updates/downdates the window aggregates the estimators consume —
//
//   * sum of loads and sum of load outer products  -> Vardi's window
//     moments (mean and K-normalized covariance) in O(L^2) per sample
//     instead of O(K L^2) per window;
//   * sum of per-source ingress-total outer products (nodes x nodes)
//     and the fanout data-term right-hand side  -> the fanout LS system
//     in O(P^2) per window instead of O(K P^2).
//
// A routing change invalidates the window wholesale (samples measured
// under different routing matrices cannot share one SeriesProblem);
// reset() flushes everything and rebinds the routing pointer.
#pragma once

#include <cstddef>
#include <deque>

#include "core/fanout.hpp"
#include "core/problem.hpp"
#include "linalg/matrix.hpp"

namespace tme::engine {

class SlidingWindow {
  public:
    /// `topo` and `routing` must outlive the window.  Capacity must be
    /// at least 1.  `track_load_moments` enables the O(L^2)-per-sample
    /// load outer-product maintenance behind mean/covariance (only
    /// Vardi consumes it; the engine disables it when Vardi is not
    /// scheduled).
    SlidingWindow(const topology::Topology* topo,
                  const linalg::SparseMatrix* routing, std::size_t capacity,
                  bool track_load_moments = true);

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return problem_.loads.size(); }
    bool empty() const { return problem_.loads.empty(); }
    bool full() const { return size() == capacity_; }

    /// Sample indices currently spanned (throws std::logic_error when
    /// empty).
    std::size_t first_sample() const;
    std::size_t last_sample() const;

    /// All sample indices in the window, chronological.
    const std::deque<std::size_t>& sample_indices() const {
        return samples_;
    }

    /// Lifetime counters (survive reset()).
    std::size_t total_pushed() const { return total_pushed_; }
    std::size_t gap_count() const { return gap_count_; }

    /// Appends a sample; evicts the oldest one when full.  `gap` marks a
    /// sample reconstructed from interpolation after lost polls.
    void push(std::size_t sample, linalg::Vector loads, bool gap = false);

    /// Flushes all samples and rebinds the routing matrix (routing-epoch
    /// change).  Aggregates restart from zero, so no downdating error
    /// survives an epoch switch.
    void reset(const linalg::SparseMatrix* routing);

    /// Swaps the routing pointer WITHOUT flushing, for a new matrix
    /// object with content identical to the current one (same routing
    /// epoch): keeps the window from dangling when the caller replaces
    /// and frees the old object.  Dimensions must match.
    void rebind_routing(const linalg::SparseMatrix* routing);

    /// The incrementally-maintained window problem (chronological).
    const core::SeriesProblem& series() const { return problem_; }

    /// Newest load vector (throws std::logic_error when empty).
    const linalg::Vector& latest() const;

    /// Mean load vector over the window.
    linalg::Vector mean_loads() const;

    /// K-normalized sample covariance of the window loads, matching
    /// linalg::sample_covariance.  Internally the outer-product sums
    /// are kept for deviations from an epoch anchor (the first sample
    /// after a reset), so large absolute load levels do not cancel
    /// catastrophically.  Throws std::logic_error when the window was
    /// built with track_load_moments = false.
    linalg::Matrix covariance() const;

    /// Incremental fanout aggregates (sums over the window).
    const linalg::Matrix& source_outer() const { return source_outer_; }
    const linalg::Vector& weighted_rhs() const { return weighted_rhs_; }

  private:
    /// Per-source ingress totals te[n] for one load vector.
    linalg::Vector source_totals(const linalg::Vector& loads) const;
    void accumulate(const linalg::Vector& loads, double sign);

    const topology::Topology* topo_;
    std::size_t capacity_;
    bool track_moments_;
    core::SeriesProblem problem_;
    std::deque<std::size_t> samples_;

    linalg::Vector sum_loads_;    // L, sum of t
    linalg::Vector anchor_;       // L, covariance shift (first epoch sample)
    bool anchor_set_ = false;
    linalg::Matrix sum_outer_;    // L x L, sum of (t-anchor)(t-anchor)'
    linalg::Matrix source_outer_; // N x N, sum of te te'
    linalg::Vector weighted_rhs_; // P, sum of w .* (R' t)

    std::size_t total_pushed_ = 0;
    std::size_t gap_count_ = 0;
};

}  // namespace tme::engine
