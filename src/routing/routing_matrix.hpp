// Routing matrix construction (paper eq. (1)).
//
// R is an L x P 0/1 matrix (fractional entries supported for multipath):
// r_lp = 1 iff the demand of ordered PoP pair p traverses link l.  Rows
// cover ALL links — each pair's column contains the ingress edge link of
// its source, the egress edge link of its destination, and every core
// link on its LSP path.  With this convention the edge-link rows of
// t = R s are exactly the node totals t_e(n) and t_x(m) used by the
// gravity and fanout formulations.
#pragma once

#include <vector>

#include "linalg/sparse.hpp"
#include "routing/cspf.hpp"
#include "topology/topology.hpp"

namespace tme::routing {

/// Builds R from an LSP mesh (mesh[p] routes pair p).
linalg::SparseMatrix build_routing_matrix(const topology::Topology& topo,
                                          const std::vector<Lsp>& mesh);

/// Builds R from plain IGP shortest paths (no bandwidth constraints);
/// convenient for tests.
linalg::SparseMatrix igp_routing_matrix(const topology::Topology& topo);

/// Link loads t = R s for a demand vector s (paper eq. (2)).
linalg::Vector link_loads(const linalg::SparseMatrix& routing,
                          const linalg::Vector& demands);

/// Sanity checks on a routing matrix: every column must contain exactly
/// one access_in row, one access_out row, and a contiguous core path.
/// Returns a human-readable problem description, or empty if consistent.
std::string validate_routing_matrix(const topology::Topology& topo,
                                    const linalg::SparseMatrix& routing);

}  // namespace tme::routing
