// Figure 4: the four largest outgoing demands from the four largest PoPs
// in the American network, over 24 hours — demands swing with the
// diurnal cycle.
#include "bench_common.hpp"

#include "traffic/traffic_matrix.hpp"

int main() {
    using namespace tme;
    bench::header(
        "Figure 4 - demands of the largest US PoPs over time",
        "Fig. 4: four largest outgoing demands of the 4 largest sources",
        "strong diurnal swings (factor ~3 peak/trough)");

    const scenario::Scenario& sc = bench::usa();
    const std::size_t n = sc.topo.pop_count();
    traffic::TrafficMatrix mean_tm(n, sc.busy_mean_demands());
    const linalg::Vector totals = mean_tm.row_totals();
    std::vector<std::size_t> sources(n);
    for (std::size_t i = 0; i < n; ++i) sources[i] = i;
    std::sort(sources.begin(), sources.end(),
              [&totals](auto a, auto b) { return totals[a] > totals[b]; });
    sources.resize(4);

    for (std::size_t src : sources) {
        // Four largest demands from this source.
        std::vector<std::size_t> dests;
        for (std::size_t m = 0; m < n; ++m) {
            if (m != src) dests.push_back(m);
        }
        std::sort(dests.begin(), dests.end(), [&](auto a, auto b) {
            return mean_tm(src, a) > mean_tm(src, b);
        });
        dests.resize(4);
        std::printf("\nsource %s -> {%s, %s, %s, %s} (normalized demand):\n",
                    sc.topo.pop(src).name.c_str(),
                    sc.topo.pop(dests[0]).name.c_str(),
                    sc.topo.pop(dests[1]).name.c_str(),
                    sc.topo.pop(dests[2]).name.c_str(),
                    sc.topo.pop(dests[3]).name.c_str());
        std::printf("%-7s %9s %9s %9s %9s\n", "time", "d1", "d2", "d3",
                    "d4");
        double peak = 0.0;
        double trough = 1e300;
        for (std::size_t k = 0; k < sc.demands.size(); k += 18) {
            std::printf("%02zu:%02zu  ", k * 5 / 60, k * 5 % 60);
            for (std::size_t d : dests) {
                const double v =
                    sc.demands[k][sc.topo.pair_index(src, d)];
                std::printf(" %9.5f", v);
            }
            std::printf("\n");
            const double v0 =
                sc.demands[k][sc.topo.pair_index(src, dests[0])];
            peak = std::max(peak, v0);
            trough = std::min(trough, v0);
        }
        std::printf("largest demand peak/trough ratio: %.2f\n",
                    peak / std::max(trough, 1e-12));
    }
    return 0;
}
