#include "traffic/traffic_matrix.hpp"

#include <gtest/gtest.h>

namespace tme::traffic {
namespace {

TEST(TrafficMatrix, BasicRoundTrip) {
    TrafficMatrix tm(3);
    tm.set(0, 1, 5.0);
    tm.set(2, 0, 3.0);
    const linalg::Vector v = tm.to_pair_vector();
    TrafficMatrix back(3, v);
    EXPECT_DOUBLE_EQ(back(0, 1), 5.0);
    EXPECT_DOUBLE_EQ(back(2, 0), 3.0);
    EXPECT_DOUBLE_EQ(back(1, 2), 0.0);
}

TEST(TrafficMatrix, DiagonalStaysZero) {
    TrafficMatrix tm(3);
    EXPECT_THROW(tm.set(1, 1, 2.0), std::invalid_argument);
    tm.set(1, 1, 0.0);  // setting zero is allowed
    EXPECT_DOUBLE_EQ(tm(1, 1), 0.0);
}

TEST(TrafficMatrix, RejectsTooSmall) {
    EXPECT_THROW(TrafficMatrix(1), std::invalid_argument);
    EXPECT_THROW(TrafficMatrix(3, linalg::Vector(5, 0.0)),
                 std::invalid_argument);
}

TEST(TrafficMatrix, Totals) {
    TrafficMatrix tm(3);
    tm.set(0, 1, 1.0);
    tm.set(0, 2, 2.0);
    tm.set(1, 0, 4.0);
    EXPECT_DOUBLE_EQ(tm.total(), 7.0);
    EXPECT_EQ(tm.row_totals(), (linalg::Vector{3.0, 4.0, 0.0}));
    EXPECT_EQ(tm.col_totals(), (linalg::Vector{4.0, 1.0, 2.0}));
}

TEST(TrafficMatrix, Fanouts) {
    TrafficMatrix tm(3);
    tm.set(0, 1, 1.0);
    tm.set(0, 2, 3.0);
    const TrafficMatrix f = tm.fanouts();
    EXPECT_DOUBLE_EQ(f(0, 1), 0.25);
    EXPECT_DOUBLE_EQ(f(0, 2), 0.75);
    // Row with zero total -> uniform fanouts.
    EXPECT_DOUBLE_EQ(f(1, 0), 0.5);
    EXPECT_DOUBLE_EQ(f(1, 2), 0.5);
}

TEST(TrafficMatrix, FanoutsSumToOne) {
    TrafficMatrix tm(4);
    tm.set(2, 0, 0.3);
    tm.set(2, 1, 0.5);
    tm.set(2, 3, 1.2);
    const TrafficMatrix f = tm.fanouts();
    double row = 0.0;
    for (std::size_t m = 0; m < 4; ++m) row += f(2, m);
    EXPECT_NEAR(row, 1.0, 1e-12);
}

TEST(FanoutHelpers, RoundTripDemandsFanouts) {
    const std::size_t n = 4;
    linalg::Vector demands(n * (n - 1));
    for (std::size_t p = 0; p < demands.size(); ++p) {
        demands[p] = 1.0 + static_cast<double>(p % 5);
    }
    const linalg::Vector fan = fanouts_from_demands(n, demands);
    const linalg::Vector totals = node_totals_from_demands(n, demands);
    const linalg::Vector back = demands_from_fanouts(n, fan, totals);
    for (std::size_t p = 0; p < demands.size(); ++p) {
        EXPECT_NEAR(back[p], demands[p], 1e-12);
    }
}

TEST(FanoutHelpers, SizeValidation) {
    EXPECT_THROW(demands_from_fanouts(3, linalg::Vector(6, 0.1),
                                      linalg::Vector(2, 1.0)),
                 std::invalid_argument);
}

}  // namespace
}  // namespace tme::traffic
