// Figure 16: MRE of the Entropy approach vs number of exactly-measured
// demands (greedy oracle selection) on the European network, plus the
// "measure the largest demands" practical strategy the paper discusses.
#include "bench_common.hpp"

#include "core/entropy.hpp"
#include "core/gravity.hpp"
#include "core/tomo_direct.hpp"

int main() {
    using namespace tme;
    bench::header(
        "Figure 16 - tomography + direct measurements (Europe)",
        "Fig. 16 + Sec. 5.3.6: ~6 greedy measurements drop the EU "
        "entropy MRE from 11% to <1%; measuring by size needs many more "
        "(19 for <1% in EU)",
        "greedy curve collapses within a handful of measurements; "
        "largest-first needs noticeably more");

    const scenario::Scenario& sc = bench::europe();
    const core::SnapshotProblem snap = sc.busy_snapshot();
    const linalg::Vector& truth = sc.busy_snapshot_demands();
    const linalg::Vector prior = core::gravity_estimate(snap);

    core::DirectMeasurementOptions options;
    options.max_measured = 24;
    options.estimator = [](const core::SnapshotProblem& p,
                           const linalg::Vector& pr) {
        core::EntropyOptions eo;
        eo.regularization = 1000.0;
        eo.solver.max_iterations = 1500;
        return core::entropy_estimate(p, pr, eo);
    };

    std::printf("running greedy oracle selection (exhaustive search per "
                "step, as in the paper)...\n");
    const core::DirectMeasurementCurve greedy =
        core::greedy_direct_measurements(snap, prior, truth, options);
    const core::DirectMeasurementCurve by_size =
        core::largest_first_direct_measurements(snap, prior, truth,
                                                options);

    std::printf("\n%10s %14s %14s\n", "#measured", "greedy MRE",
                "largest-first");
    for (std::size_t i = 0; i < greedy.mre.size(); ++i) {
        std::printf("%10zu %14.4f %14.4f\n", i, greedy.mre[i],
                    i < by_size.mre.size() ? by_size.mre[i] : -1.0);
    }
    std::printf("\nfirst greedy picks: ");
    for (std::size_t i = 0; i < std::min<std::size_t>(6, greedy.measured.size());
         ++i) {
        const auto [src, dst] = sc.topo.pair_nodes(greedy.measured[i]);
        std::printf("%s->%s ", sc.topo.pop(src).name.c_str(),
                    sc.topo.pop(dst).name.c_str());
    }
    std::printf("\n");

    // Measurements needed to reach half / tenth of the initial MRE.
    auto steps_to = [](const linalg::Vector& curve, double target) {
        for (std::size_t i = 0; i < curve.size(); ++i) {
            if (curve[i] <= target) return static_cast<long>(i);
        }
        return -1L;
    };
    const double half = 0.5 * greedy.mre.front();
    const double tenth = 0.1 * greedy.mre.front();
    std::printf("measurements to halve the MRE: greedy %ld, largest-first "
                "%ld\n",
                steps_to(greedy.mre, half), steps_to(by_size.mre, half));
    std::printf("measurements to reach 10%% of initial: greedy %ld, "
                "largest-first %ld\n",
                steps_to(greedy.mre, tenth), steps_to(by_size.mre, tenth));
    return 0;
}
