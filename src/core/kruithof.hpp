// Kruithof's projection method (paper Section 4.2.1).
//
// The 1937 original adjusts a prior traffic matrix to match measured
// row/column totals by alternating proportional scaling (iterative
// proportional fitting); Krupp (1979) showed it minimizes the Kullback-
// Leibler distance from the prior and extended it to general linear
// constraints R s = t.  Both are provided:
//
//  * kruithof_ipf      — classic biproportional fitting to node totals;
//  * kruithof_general  — multiplicative iterative scaling (MART) for
//                        general non-negative constraint matrices.
#pragma once

#include "core/problem.hpp"
#include "linalg/budget.hpp"
#include "obs/counters.hpp"

namespace tme::core {

struct KruithofOptions {
    std::size_t max_iterations = 500;
    /// Convergence: max relative marginal/constraint violation.
    double tolerance = 1e-10;
    /// Convergence-check cadence: the violation is evaluated every
    /// `check_every` sweeps (and always on the last); large-backbone
    /// callers that know they need tens of sweeps can raise it.  In
    /// kruithof_general the per-sweep measure piggy-backs on the MART
    /// pass (each row's residual before its own rescale), which is one
    /// sweep staler than the historical post-sweep R s residual — a
    /// tolerance-converged run can therefore take a sweep longer than
    /// the pre-rewrite loop (iterates at equal sweep counts are
    /// unchanged).  A candidate convergence is always confirmed
    /// against an exactly recomputed post-sweep R s before being
    /// reported, so a false convergence is impossible.  0 behaves
    /// as 1.
    std::size_t check_every = 1;
    /// Optional iteration telemetry sink: on return the solver adds its
    /// scaling sweeps to kruithof_sweeps.  Written once at the return
    /// site only.  Not owned; must outlive the call.
    obs::SolverCounters* counters = nullptr;
    /// Optional cooperative deadline, polled once per scaling sweep.  A
    /// tripped budget returns the current (nonnegative, partially
    /// fitted) iterate with outcome = budget_exhausted.  Not owned;
    /// must outlive the call.
    linalg::SolveBudget* budget = nullptr;
};

struct KruithofResult {
    linalg::Vector s;
    std::size_t iterations = 0;
    bool converged = false;
    double max_violation = 0.0;  ///< final relative constraint violation
    /// How the solve ended: converged, stalled at max_iterations, or
    /// cut short by the SolveBudget (see linalg/budget.hpp).
    linalg::SolveOutcome outcome = linalg::SolveOutcome::converged;
};

/// Classic Kruithof/IPF: scales `prior` (pair-indexed, nodes inferred
/// from size) so row sums match `row_totals` and column sums match
/// `col_totals`.  Totals must agree (sum row == sum col) within 1e-9
/// relative, else std::invalid_argument.
KruithofResult kruithof_ipf(std::size_t nodes, const linalg::Vector& prior,
                            const linalg::Vector& row_totals,
                            const linalg::Vector& col_totals,
                            const KruithofOptions& options = {});

/// Krupp's extension: minimize D(s || prior) subject to R s = t, s >= 0,
/// via multiplicative iterative scaling over the constraints.  Requires
/// a consistent system (t in the cone of R's columns) for convergence;
/// with inconsistent data it stalls at max_iterations with the violation
/// reported (use the Entropy estimator for noisy data).
KruithofResult kruithof_general(const SnapshotProblem& problem,
                                const linalg::Vector& prior,
                                const KruithofOptions& options = {});

}  // namespace tme::core
