#include "telemetry/timeseries.hpp"

namespace tme::telemetry {

TimeSeriesStore::TimeSeriesStore(std::size_t objects, std::size_t intervals)
    : objects_(objects),
      intervals_(intervals),
      values_(objects * intervals, 0.0),
      present_(objects * intervals, false) {}

void TimeSeriesStore::check(std::size_t object, std::size_t interval) const {
    if (object >= objects_ || interval >= intervals_) {
        throw std::out_of_range("TimeSeriesStore: index out of range");
    }
}

void TimeSeriesStore::record(std::size_t object, std::size_t interval,
                             double rate) {
    check(object, interval);
    values_[object * intervals_ + interval] = rate;
    present_[object * intervals_ + interval] = true;
}

void TimeSeriesStore::record_loss(std::size_t object, std::size_t interval) {
    check(object, interval);
    present_[object * intervals_ + interval] = false;
}

bool TimeSeriesStore::has(std::size_t object, std::size_t interval) const {
    check(object, interval);
    return present_[object * intervals_ + interval];
}

double TimeSeriesStore::at(std::size_t object, std::size_t interval) const {
    check(object, interval);
    if (!present_[object * intervals_ + interval]) {
        throw std::logic_error("TimeSeriesStore::at: missing sample");
    }
    return values_[object * intervals_ + interval];
}

double TimeSeriesStore::interpolate(std::size_t object,
                                    std::size_t interval) const {
    // Nearest present samples on each side.
    std::optional<std::size_t> left;
    for (std::size_t i = interval; i-- > 0;) {
        if (present_[object * intervals_ + i]) {
            left = i;
            break;
        }
    }
    std::optional<std::size_t> right;
    for (std::size_t i = interval + 1; i < intervals_; ++i) {
        if (present_[object * intervals_ + i]) {
            right = i;
            break;
        }
    }
    if (left && right) {
        const double lv = values_[object * intervals_ + *left];
        const double rv = values_[object * intervals_ + *right];
        const double frac = static_cast<double>(interval - *left) /
                            static_cast<double>(*right - *left);
        return lv + frac * (rv - lv);
    }
    if (left) return values_[object * intervals_ + *left];
    if (right) return values_[object * intervals_ + *right];
    return 0.0;  // object never polled successfully
}

std::vector<double> TimeSeriesStore::snapshot(std::size_t interval) const {
    if (interval >= intervals_) {
        throw std::out_of_range("TimeSeriesStore::snapshot");
    }
    std::vector<double> snap(objects_, 0.0);
    for (std::size_t o = 0; o < objects_; ++o) {
        snap[o] = present_[o * intervals_ + interval]
                      ? values_[o * intervals_ + interval]
                      : interpolate(o, interval);
    }
    return snap;
}

std::size_t TimeSeriesStore::missing_count(std::size_t interval) const {
    if (interval >= intervals_) {
        throw std::out_of_range("TimeSeriesStore::missing_count");
    }
    std::size_t missing = 0;
    for (std::size_t o = 0; o < objects_; ++o) {
        if (!present_[o * intervals_ + interval]) ++missing;
    }
    return missing;
}

double TimeSeriesStore::loss_fraction() const {
    if (present_.empty()) return 0.0;
    std::size_t missing = 0;
    for (bool p : present_) {
        if (!p) ++missing;
    }
    return static_cast<double>(missing) /
           static_cast<double>(present_.size());
}

}  // namespace tme::telemetry
