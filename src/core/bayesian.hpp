// Bayesian / regularized least-squares estimation (paper Section 4.2.3).
//
// With a Gaussian prior s ~ N(s_prior, sigma^2 I) and unit-variance
// measurement noise t = R s + v, the MAP estimate solves (eq. 7)
//
//     minimize  ||R s - t||^2 + sigma^{-2} ||s - s_prior||^2,   s >= 0.
//
// We parameterize by the regularization parameter lambda = sigma^2: small
// lambda pins the estimate to the prior, large lambda trusts the link
// measurements (the regime the paper finds best, Fig. 13).  The problem
// is a stacked NNLS solved in Gram form:  G = R'R + (1/lambda) I,
// g = R't + (1/lambda) s_prior.
#pragma once

#include "core/problem.hpp"

namespace tme::core {

struct BayesianOptions {
    /// Regularization parameter lambda = sigma^2 (> 0).
    double regularization = 1000.0;
    /// Optional precomputed Gram matrix R'R (pairs x pairs).  The online
    /// engine's routing-epoch cache hands this in so repeated windows
    /// under an unchanged routing skip the Gram assembly; it MUST equal
    /// problem.routing->gram().  Not owned.
    const linalg::Matrix* shared_gram = nullptr;
    /// Optional warm start for the active-set NNLS (see NnlsOptions).
    /// G + (1/lambda) I is positive definite, so the minimizer is unique
    /// and unchanged by warm starting.  Not owned.
    const linalg::Vector* warm_start = nullptr;
};

/// MAP estimate with non-negativity.  `prior` is pair-indexed.
linalg::Vector bayesian_estimate(const SnapshotProblem& problem,
                                 const linalg::Vector& prior,
                                 const BayesianOptions& options = {});

}  // namespace tme::core
