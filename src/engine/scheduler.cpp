#include "engine/scheduler.hpp"

#include <chrono>
#include <optional>
#include <utility>

#include <cmath>
#include <new>

#include "check/contract.hpp"
#include "check/validators.hpp"
#include "core/gravity.hpp"
#include "engine/clock.hpp"
#include "fault/injection.hpp"
#include "obs/trace.hpp"

namespace tme::engine {

using Clock = SteadyClock;

namespace {

/// Static span names per method ("solver/<name>"): span records keep
/// the pointer, so the strings must outlive every drain.
const char* solver_span_name(Method m) {
    switch (m) {
        case Method::gravity: return "solver/gravity";
        case Method::kruithof: return "solver/kruithof";
        case Method::entropy: return "solver/entropy";
        case Method::bayesian: return "solver/bayesian";
        case Method::vardi: return "solver/vardi";
        case Method::fanout: return "solver/fanout";
    }
    return "solver/?";
}

}  // namespace

const MethodRun* WindowResult::find(Method method) const {
    for (const MethodRun& run : runs) {
        if (run.method == method) return &run;
    }
    return nullptr;
}

std::string SchedulerConfigCheck::message() const {
    switch (error) {
        case SchedulerConfigError::none:
            return "ok";
        case SchedulerConfigError::no_methods:
            return "no methods scheduled";
        case SchedulerConfigError::duplicate_method:
            return std::string("duplicate method '") +
                   method_name(offender) + "'";
    }
    return "?";
}

SchedulerConfigCheck EstimatorScheduler::validate_methods(
    const std::vector<Method>& methods) {
    SchedulerConfigCheck check;
    if (methods.empty()) {
        check.error = SchedulerConfigError::no_methods;
        return check;
    }
    // Uniqueness is load-bearing, not just hygiene: each method owns
    // one warm-start slot (and, on the pipeline, one lineage), so two
    // runs of the same method per window would race.
    std::vector<bool> seen(method_count, false);
    for (Method m : methods) {
        std::vector<bool>::reference slot_seen =
            seen[static_cast<std::size_t>(m)];
        if (slot_seen) {
            check.error = SchedulerConfigError::duplicate_method;
            check.offender = m;
            return check;
        }
        slot_seen = true;
    }
    return check;
}

WindowContext WindowContext::capture(
    const SlidingWindow& window, std::shared_ptr<const RoutingEpoch> epoch,
    const std::vector<Method>& methods, std::size_t min_series_window,
    std::size_t ordinal) {
    if (window.empty()) {
        throw std::logic_error("WindowContext::capture: empty window");
    }
    // The snapshot must be built against the epoch it pins: a stale or
    // mismatched epoch would hand every method of this window derived
    // data (Gram, constraints) for a different routing matrix.
    TME_CONTRACT(epoch != nullptr, "WindowContext::capture: null epoch");
    TME_CONTRACT(epoch->rows() == window.series().routing->rows() &&
                     epoch->cols() == window.series().routing->cols() &&
                     epoch->nonzeros() == window.series().routing->nonzeros(),
                 "WindowContext::capture: pinned epoch does not match the "
                 "window's routing matrix");
    obs::Span span("window/capture", "ordinal",
                   static_cast<long long>(ordinal));
    WindowContext ctx;
    ctx.ordinal = ordinal;
    ctx.window_start_sample = window.first_sample();
    ctx.window_end_sample = window.last_sample();
    ctx.window_size = window.size();
    ctx.epoch = std::move(epoch);
    ctx.run_series = window.size() >= std::max<std::size_t>(
                                          min_series_window, 1);

    ctx.series = window.series();  // copies the loads; topo/routing alias
    ctx.latest.topo = ctx.series.topo;
    ctx.latest.routing = ctx.series.routing;
    ctx.latest.loads = window.latest();

    bool need_prior = false;
    bool need_vardi = false;
    bool need_fanout = false;
    for (Method m : methods) {
        if (m == Method::gravity || m == Method::kruithof ||
            m == Method::entropy || m == Method::bayesian) {
            need_prior = true;
        }
        if (m == Method::vardi && ctx.run_series) need_vardi = true;
        if (m == Method::fanout && ctx.run_series) need_fanout = true;
    }

    // Gravity prior, shared by Kruithof / entropy / Bayesian.
    if (need_prior) {
        const Clock::time_point prior_start = Clock::now();
        ctx.prior = core::gravity_estimate(ctx.latest);
        ctx.prior_seconds = seconds_since(prior_start);
    }

    // Window aggregates, materialized once per window from the ring
    // buffer's incrementally-maintained sums.
    if (need_vardi || need_fanout) ctx.mean_loads = window.mean_loads();
    if (need_vardi) ctx.covariance = window.covariance();
    if (need_fanout) {
        ctx.source_outer = window.source_outer();
        ctx.weighted_rhs = window.weighted_rhs();
    }
    // Exit boundary: the materialized aggregates are consumed by every
    // method of this window — a NaN from a downdate gone wrong (or an
    // interpolated gap sample) must be caught here, not three solvers
    // later.
    TME_CONTRACT_DBG_CHECK(
        check::finite(ctx.mean_loads, "window capture mean_loads"));
    TME_CONTRACT_DBG_CHECK(
        check::finite(ctx.covariance, "window capture covariance"));
    TME_CONTRACT_DBG_CHECK(
        check::finite(ctx.source_outer, "window capture source_outer"));
    TME_CONTRACT_DBG_CHECK(
        check::finite(ctx.weighted_rhs, "window capture weighted_rhs"));
    TME_CONTRACT_DBG_CHECK(
        check::finite(ctx.prior, "window capture gravity prior"));
    return ctx;
}

MethodExecution execute_method(Method m, const WindowContext& ctx,
                               const MethodOptions& options,
                               const linalg::Vector* warm_seed,
                               bool collect_warm) {
    obs::Span span(solver_span_name(m), "ordinal",
                   static_cast<long long>(ctx.ordinal), "warm",
                   warm_seed != nullptr ? 1 : 0);
    const Clock::time_point start = Clock::now();
    MethodExecution out;
    MethodRun& run = out.run;
    run.method = m;
    run.fallback_method = m;
    // Simulated allocation failure at the solve boundary (compiled out
    // with TME_FAULT_INJECTION=0).  Thrown before any solver state is
    // built, exactly where a real Gram-column or factor allocation
    // would fail; execute_method_guarded classifies it as degradable.
    if (fault::should_inject(fault::FaultSite::alloc_failure,
                             method_name(m))) {
        throw std::bad_alloc();
    }
    if (m == Method::gravity) {
        run.estimate = ctx.prior;
        run.seconds = ctx.prior_seconds;
        return out;  // prior timing, not this call's
    }
    // One budget per solve, armed here — arming is also the
    // solver_stall injection point (the fault makes the first poll
    // trip, simulating a wedged solve cut by its deadline).
    SolveBudget budget(options.solve_deadline_seconds, method_name(m));
    budget.start();
    switch (m) {
        case Method::gravity:
            break;  // handled above
        case Method::kruithof: {
            core::KruithofOptions opts = options.kruithof;
            opts.counters = &run.solver;
            opts.budget = &budget;
            run.estimate =
                core::kruithof_general(ctx.latest, ctx.prior, opts).s;
            break;
        }
        case Method::entropy: {
            core::EntropyOptions opts = options.entropy;
            opts.solver.counters = &run.solver;
            opts.solver.budget = &budget;
            if (warm_seed != nullptr) {
                opts.solver.initial = warm_seed;
                run.warm_started = true;
                run.warm_accepted = true;
            }
            run.estimate =
                core::entropy_estimate(ctx.latest, ctx.prior, opts);
            if (collect_warm) {
                out.warm_next = run.estimate;
                out.warm_next_valid = true;
            }
            break;
        }
        case Method::bayesian: {
            core::BayesianOptions opts = options.bayesian;
            opts.counters = &run.solver;
            opts.budget = &budget;
            // Gram-free: the MAP system is solved through on-demand
            // Gram columns / implicit A'A products off the epoch's
            // cached R' — neither the dense nor the CSR Gram is ever
            // triggered by the default schedule.
            opts.operator_form = true;
            opts.shared_routing_transpose = &ctx.epoch->routing_transpose();
            if (warm_seed != nullptr) {
                opts.warm_start = warm_seed;
                run.warm_started = true;
                run.warm_accepted = true;
            }
            run.estimate =
                core::bayesian_estimate(ctx.latest, ctx.prior, opts);
            if (collect_warm) {
                out.warm_next = run.estimate;
                out.warm_next_valid = true;
            }
            break;
        }
        case Method::vardi: {
            core::VardiOptions opts = options.vardi;
            opts.counters = &run.solver;
            opts.budget = &budget;
            // Gram-free: columns of the transformed Gram
            // G1 + w*(G1 .* G1) are generated on demand off the
            // epoch's cached R' — the dense per-epoch transformed Gram
            // is never built on the default schedule.
            opts.operator_form = true;
            opts.shared_routing_transpose = &ctx.epoch->routing_transpose();
            opts.mean_loads = &ctx.mean_loads;
            opts.load_covariance = &ctx.covariance;
            if (warm_seed != nullptr) {
                opts.warm_start = warm_seed;
                run.warm_started = true;
                run.warm_accepted = true;
            }
            run.estimate = core::vardi_estimate(ctx.series, opts).lambda;
            if (collect_warm) {
                out.warm_next = run.estimate;
                out.warm_next_valid = true;
            }
            break;
        }
        case Method::fanout: {
            core::FanoutOptions opts = options.fanout;
            opts.qp.counters = &run.solver;
            opts.qp.budget = &budget;
            // Gram-free: the QP's data term is applied through R / R'
            // per window sample and its KKT rows are generated on
            // demand off the epoch's cached R' — not even the CSR Gram
            // is materialized on the default schedule.
            opts.operator_form = true;
            opts.shared_routing_transpose = &ctx.epoch->routing_transpose();
            opts.shared_constraints =
                &ctx.epoch->fanout_constraints(*ctx.series.topo);
            core::FanoutWindowAggregates aggregates;
            aggregates.source_outer = &ctx.source_outer;
            aggregates.weighted_rhs = &ctx.weighted_rhs;
            aggregates.mean_loads = &ctx.mean_loads;
            opts.aggregates = aggregates;
            if (warm_seed != nullptr) {
                opts.warm_start = warm_seed;
                run.warm_started = true;
            }
            core::FanoutResult fanout =
                core::fanout_estimate(ctx.series, opts);
            run.warm_accepted = fanout.warm_accepted;
            run.estimate = std::move(fanout.mean_demands);
            // The QP's variable space is the fanout vector, not the
            // demand estimate: that is what seeds the next window's
            // active set.
            if (collect_warm) {
                out.warm_next = std::move(fanout.fanouts);
                out.warm_next_valid = true;
            }
            break;
        }
    }
    // Simulated solver divergence: corrupt the estimate at the solve
    // boundary.  execute_method_guarded's validation catches the NaNs
    // and falls back, exactly as it would for a real blow-up.
    if (fault::should_inject(fault::FaultSite::solver_diverge,
                             method_name(m))) {
        for (double& v : run.estimate) {
            v = std::numeric_limits<double>::quiet_NaN();
        }
    }
    if (budget.expired()) {
        run.solve_outcome = SolveOutcome::budget_exhausted;
    }
    run.seconds = seconds_since(start);
    return out;
}

namespace {

/// A servable estimate: right-sized, finite, nonnegative.  Every
/// estimator in the repo guarantees this on a clean return (solver
/// boundary contracts); a violation here means the solve blew up (or a
/// solver_diverge fault fired).
bool estimate_usable(const linalg::Vector& estimate, std::size_t pairs) {
    if (estimate.size() != pairs) return false;
    for (double v : estimate) {
        if (!std::isfinite(v) || v < 0.0) return false;
    }
    return true;
}

/// Classifies an estimator exception: data/solver faults (contract
/// violations, allocation failure, runtime errors such as singular KKT
/// systems) degrade; anything else is a programming error that must
/// propagate.  Fills `reason` with the message when degradable.
bool degradable_failure(const std::exception_ptr& error,
                        std::string& reason) {
    try {
        std::rethrow_exception(error);
    } catch (const check::ContractViolation& e) {
        reason = e.what();
        return true;
    } catch (const std::bad_alloc&) {
        reason = "allocation failure";
        return true;
    } catch (const std::runtime_error& e) {
        reason = e.what();
        return true;
    } catch (...) {
        return false;
    }
}

}  // namespace

MethodExecution execute_method_guarded(Method m, const WindowContext& ctx,
                                       const MethodOptions& options,
                                       const linalg::Vector* warm_seed,
                                       FallbackState& last_good,
                                       bool collect_warm) {
    const std::size_t pairs = ctx.series.routing->cols();
    MethodExecution out;
    std::string reason;
    bool primary_ok = false;
    try {
        out = execute_method(m, ctx, options, warm_seed, collect_warm);
        if (estimate_usable(out.run.estimate, pairs)) {
            primary_ok = true;
        } else {
            reason = "estimate not finite/nonnegative";
        }
    } catch (...) {
        const std::exception_ptr error = std::current_exception();
        if (!degradable_failure(error, reason)) {
            std::rethrow_exception(error);
        }
    }

    if (primary_ok) {
        MethodRun& run = out.run;
        if (run.solve_outcome == SolveOutcome::budget_exhausted) {
            // Feasible but deadline-cut: serve it flagged, and keep it
            // out of the warm slot and the last-good carry-forward so
            // a degraded iterate never seeds future windows.
            run.quality = EstimateQuality::degraded;
            run.degradation_reason = "solve budget exhausted";
            out.warm_next_valid = false;
            ++last_good.age;
        } else {
            last_good.estimate = run.estimate;
            last_good.valid = true;
            last_good.age = 0;
        }
        return out;
    }

    // Fallback chain.  The primary run's partial state (timing,
    // counters) is discarded with it; the fallback is timed on its own.
    const Clock::time_point start = Clock::now();
    out = MethodExecution{};
    MethodRun& run = out.run;
    run.method = m;
    run.fallback_method = m;
    run.degradation_reason = std::move(reason);
    ++last_good.age;

    auto accept_fallback = [&](Method fb, linalg::Vector&& estimate) {
        if (!estimate_usable(estimate, pairs)) return false;
        run.estimate = std::move(estimate);
        run.used_fallback = true;
        run.fallback_method = fb;
        run.quality = EstimateQuality::degraded;
        return true;
    };

    bool served = false;
    // Fanout degrades to the Bayesian MAP estimate first — it is the
    // next-best method on the paper's accuracy ladder and shares the
    // captured context.  Requires the gravity prior (absent on
    // fanout-only schedules, where the chain goes straight to gravity).
    if (m == Method::fanout && ctx.prior.size() == pairs) {
        try {
            MethodExecution fb = execute_method(Method::bayesian, ctx,
                                                options, nullptr, false);
            run.solver = fb.run.solver;
            served = accept_fallback(Method::bayesian,
                                     std::move(fb.run.estimate));
        } catch (...) {
            std::string fb_reason;
            if (!degradable_failure(std::current_exception(), fb_reason)) {
                throw;
            }
        }
    }
    // Terminal method fallback: the gravity prior (already computed in
    // capture for most schedules; recomputed here when it was not).
    if (!served) {
        linalg::Vector prior_estimate;
        if (ctx.prior.size() == pairs) {
            prior_estimate = ctx.prior;
        } else {
            try {
                prior_estimate = core::gravity_estimate(ctx.latest);
            } catch (...) {
                std::string fb_reason;
                if (!degradable_failure(std::current_exception(),
                                        fb_reason)) {
                    throw;
                }
            }
        }
        served = accept_fallback(Method::gravity,
                                 std::move(prior_estimate));
    }
    // Every method failed: carry the last good estimate forward, aged.
    if (!served && last_good.valid &&
        last_good.estimate.size() == pairs) {
        run.estimate = last_good.estimate;
        run.used_fallback = true;
        run.quality = EstimateQuality::stale;
        run.stale_age = last_good.age;
        served = true;
    }
    if (!served) {
        run.estimate.assign(pairs, 0.0);
        run.quality = EstimateQuality::failed;
    }
    run.seconds = seconds_since(start);
    return out;
}

EstimatorScheduler::EstimatorScheduler(std::vector<Method> methods,
                                       MethodOptions options,
                                       std::size_t threads, bool warm_start,
                                       std::size_t min_series_window)
    : methods_(std::move(methods)),
      options_(std::move(options)),
      warm_start_(warm_start),
      min_series_window_(min_series_window < 1 ? 1 : min_series_window),
      warm_(method_count),
      last_good_(method_count),
      pool_(threads) {
    const SchedulerConfigCheck check = validate_methods(methods_);
    if (!check) throw SchedulerConfigException(check);
}

void EstimatorScheduler::reset_warm_state() {
    for (WarmSlot& s : warm_) s.valid = false;
}

WindowResult EstimatorScheduler::run(
    const SlidingWindow& window,
    std::shared_ptr<const RoutingEpoch> epoch) {
    if (window.empty()) {
        throw std::logic_error("EstimatorScheduler::run: empty window");
    }
    obs::Span span("scheduler/window", "ordinal",
                   static_cast<long long>(next_ordinal_), "end_sample",
                   static_cast<long long>(window.last_sample()));
    const Clock::time_point pass_start = Clock::now();

    const WindowContext ctx =
        WindowContext::capture(window, std::move(epoch), methods_,
                               min_series_window_, next_ordinal_++);

    std::vector<std::optional<MethodExecution>> slots(methods_.size());
    std::vector<std::exception_ptr> errors(methods_.size());
    std::vector<std::function<void()>> tasks;

    for (std::size_t i = 0; i < methods_.size(); ++i) {
        const Method m = methods_[i];
        if (is_series_method(m) && !ctx.run_series) continue;
        if (m == Method::gravity) {
            // The prior was already computed in capture(); no task.
            slots[i] = execute_method_guarded(
                m, ctx, options_, nullptr,
                last_good_[static_cast<std::size_t>(m)]);
            continue;
        }
        tasks.push_back([this, i, m, &ctx, &slots, &errors] {
            try {
                const WarmSlot& warm = slot(m);
                const linalg::Vector* seed =
                    warm_start_ && warm.valid ? &warm.estimate : nullptr;
                // Each task touches only its own method's last-good
                // slot, like the warm slots — no locking needed.
                slots[i] = execute_method_guarded(
                    m, ctx, options_, seed,
                    last_good_[static_cast<std::size_t>(m)], warm_start_);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        });
    }
    pool_.run_batch(std::move(tasks));

    for (const std::exception_ptr& error : errors) {
        if (error) std::rethrow_exception(error);
    }

    WindowResult result;
    result.window_start_sample = ctx.window_start_sample;
    result.window_end_sample = ctx.window_end_sample;
    result.window_size = ctx.window_size;
    result.epoch_fingerprint = ctx.epoch->fingerprint();
    for (std::optional<MethodExecution>& maybe : slots) {
        if (!maybe.has_value()) continue;
        // Thread the solution into the next window's warm start.  Safe
        // here without locking: the pool batch has been joined, so no
        // task can still touch the slots.
        if (warm_start_ && maybe->warm_next_valid) {
            WarmSlot& s = slot(maybe->run.method);
            s.estimate = std::move(maybe->warm_next);
            s.valid = true;
        }
        result.runs.push_back(std::move(maybe->run));
    }
    result.seconds = seconds_since(pass_start);
    return result;
}

}  // namespace tme::engine
