// Engine perf bench: incremental sliding windows vs. naive per-window
// recomputation.
//
// Streams a scenario day through (a) the online engine — ring-buffered
// window, routing-epoch-cached Gram matrix, incrementally maintained
// window aggregates — and (b) a naive baseline that rebuilds every
// window's SeriesProblem from scratch and recomputes every
// R-derived/window-derived quantity per window, exactly as the offline
// benches do.  Both paths run the same methods (gravity, Bayesian,
// Vardi, fanout) single-threaded and cold-started, so their estimates
// must agree to within 1e-9; the bench FAILS (non-zero exit) if they
// diverge or if the incremental path is not faster.  A third pass with
// warm starts enabled is reported for context.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/bayesian.hpp"
#include "core/fanout.hpp"
#include "core/gravity.hpp"
#include "core/vardi.hpp"
#include "engine/engine.hpp"

namespace {

using tme::engine::Method;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

double max_abs_diff(const tme::linalg::Vector& a,
                    const tme::linalg::Vector& b) {
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        worst = std::max(worst, std::abs(a[i] - b[i]));
    }
    return worst;
}

/// Estimates for one window, in method order gravity / bayesian /
/// vardi / fanout (series slots empty below the series threshold).
struct WindowEstimates {
    std::vector<tme::linalg::Vector> by_method;
};

constexpr std::size_t kMinSeriesWindow = 3;

std::vector<WindowEstimates> run_naive(const tme::scenario::Scenario& sc,
                                       std::size_t samples,
                                       std::size_t window_size) {
    using namespace tme;
    std::vector<WindowEstimates> out;
    out.reserve(samples);
    std::vector<linalg::Vector> history;
    for (std::size_t k = 0; k < samples; ++k) {
        history.push_back(sc.loads[k]);
        const std::size_t wsize = std::min(window_size, history.size());

        // Rebuild the window problem from scratch: copy the load
        // vectors and recompute everything the estimators need.
        core::SeriesProblem series;
        series.topo = &sc.topo;
        series.routing = &sc.routing;
        series.loads.assign(history.end() - static_cast<std::ptrdiff_t>(wsize),
                            history.end());

        core::SnapshotProblem latest;
        latest.topo = &sc.topo;
        latest.routing = &sc.routing;
        latest.loads = series.loads.back();

        WindowEstimates est;
        const linalg::Vector prior = core::gravity_estimate(latest);
        est.by_method.push_back(prior);
        est.by_method.push_back(core::bayesian_estimate(latest, prior));
        if (wsize >= kMinSeriesWindow) {
            est.by_method.push_back(core::vardi_estimate(series).lambda);
            est.by_method.push_back(
                core::fanout_estimate(series).mean_demands);
        }
        out.push_back(std::move(est));
    }
    return out;
}

std::vector<WindowEstimates> run_engine(const tme::scenario::Scenario& sc,
                                        std::size_t samples,
                                        std::size_t window_size,
                                        bool warm_start) {
    using namespace tme;
    engine::EngineConfig config;
    config.window_size = window_size;
    config.min_series_window = kMinSeriesWindow;
    config.methods = {Method::gravity, Method::bayesian, Method::vardi,
                      Method::fanout};
    config.threads = 0;  // single-threaded, like the baseline
    config.warm_start = warm_start;
    engine::OnlineEngine eng(sc.topo, sc.routing, config);

    std::vector<WindowEstimates> out;
    out.reserve(samples);
    for (std::size_t k = 0; k < samples; ++k) {
        tme::engine::WindowResult result = eng.ingest(k, sc.loads[k]);
        WindowEstimates est;
        for (auto& run : result.runs) {
            est.by_method.push_back(std::move(run.estimate));
        }
        out.push_back(std::move(est));
    }
    return out;
}

double compare(const std::vector<WindowEstimates>& a,
               const std::vector<WindowEstimates>& b) {
    if (a.size() != b.size()) return 1e300;
    double worst = 0.0;
    for (std::size_t k = 0; k < a.size(); ++k) {
        if (a[k].by_method.size() != b[k].by_method.size()) return 1e300;
        for (std::size_t m = 0; m < a[k].by_method.size(); ++m) {
            if (a[k].by_method[m].size() != b[k].by_method[m].size()) {
                return 1e300;
            }
            worst = std::max(
                worst, max_abs_diff(a[k].by_method[m], b[k].by_method[m]));
        }
    }
    return worst;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace tme;

    std::size_t samples = 288;
    std::size_t window_size = 36;
    scenario::Network network = scenario::Network::europe;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--samples") && i + 1 < argc) {
            samples = static_cast<std::size_t>(std::atoi(argv[++i]));
        } else if (!std::strcmp(argv[i], "--window") && i + 1 < argc) {
            window_size = static_cast<std::size_t>(std::atoi(argv[++i]));
        } else if (!std::strcmp(argv[i], "--usa")) {
            network = scenario::Network::usa;
        } else {
            std::printf("usage: %s [--samples N] [--window W] [--usa]\n",
                        argv[0]);
            return 2;
        }
    }
    if (samples == 0 || window_size == 0) {
        std::printf("error: --samples and --window must be positive\n");
        return 2;
    }

    bench::header(
        "Engine perf: incremental sliding windows vs naive recomputation",
        "new subsystem (streaming engine); paper Sec. 5.1 operational "
        "setting",
        "engine processes the day faster with identical estimates");

    const scenario::Scenario sc = scenario::make_scenario(network);
    samples = std::min(samples, sc.loads.size());
    std::printf("network=%s samples=%zu window=%zu methods=gravity,"
                "bayesian,vardi,fanout\n\n",
                sc.name.c_str(), samples, window_size);

    const Clock::time_point t_naive = Clock::now();
    const auto naive = run_naive(sc, samples, window_size);
    const double naive_seconds = seconds_since(t_naive);

    const Clock::time_point t_cold = Clock::now();
    const auto engine_cold = run_engine(sc, samples, window_size, false);
    const double cold_seconds = seconds_since(t_cold);

    const Clock::time_point t_warm = Clock::now();
    const auto engine_warm = run_engine(sc, samples, window_size, true);
    const double warm_seconds = seconds_since(t_warm);

    const double cold_diff = compare(naive, engine_cold);
    const double warm_diff = compare(naive, engine_warm);

    std::printf("naive rebuild-per-window : %8.3f s\n", naive_seconds);
    std::printf("engine (cold starts)     : %8.3f s   speedup %.2fx   "
                "max |diff| %.3g\n",
                cold_seconds, naive_seconds / cold_seconds, cold_diff);
    std::printf("engine (warm starts)     : %8.3f s   speedup %.2fx   "
                "max |diff| %.3g\n",
                warm_seconds, naive_seconds / warm_seconds, warm_diff);

    bool ok = true;
    if (cold_diff > 1e-9) {
        std::printf("FAIL: cold-engine estimates diverge from naive "
                    "(%.3g > 1e-9)\n",
                    cold_diff);
        ok = false;
    }
    if (warm_diff > 1e-9) {
        std::printf("FAIL: warm-engine estimates diverge from naive "
                    "(%.3g > 1e-9)\n",
                    warm_diff);
        ok = false;
    }
    if (warm_seconds >= naive_seconds) {
        std::printf("FAIL: incremental warm path not faster than naive "
                    "(%.3fs >= %.3fs)\n",
                    warm_seconds, naive_seconds);
        ok = false;
    }
    if (ok) {
        std::printf("\nPASS: identical estimates (<= 1e-9); incremental "
                    "path %.2fx faster cold, %.2fx warm\n",
                    naive_seconds / cold_seconds,
                    naive_seconds / warm_seconds);
    }
    return ok ? 0 : 1;
}
