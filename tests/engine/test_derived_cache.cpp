// Per-epoch derived data: lazy builds, memoization, eviction semantics,
// and fingerprint-collision handling of the routing-epoch cache.
#include <gtest/gtest.h>

#include "core/route_change.hpp"
#include "core/test_helpers.hpp"
#include "engine/epoch_cache.hpp"

namespace tme::engine {
namespace {

using core::testing::SmallNetwork;
using core::testing::tiny_network;

TEST(RoutingEpochDerived, VardiGramLazyBuildAndReuse) {
    const SmallNetwork net = tiny_network();
    RoutingEpochCache cache(2);
    const RoutingEpoch& epoch = cache.acquire(net.routing);
    EXPECT_EQ(epoch.derived_builds(), 0u);

    const double w = 0.37;
    const linalg::Matrix& transformed = epoch.vardi_gram(w);
    EXPECT_EQ(epoch.derived_builds(), 1u);

    // Values: G1 + w * (G1 .* G1) of the epoch's Gram.
    const linalg::Matrix g1 = net.routing.gram();
    ASSERT_EQ(transformed.rows(), g1.rows());
    for (std::size_t p = 0; p < g1.rows(); ++p) {
        for (std::size_t q = 0; q < g1.cols(); ++q) {
            EXPECT_EQ(transformed(p, q),
                      g1(p, q) + w * g1(p, q) * g1(p, q));
        }
    }

    // Second call with the same weight is a cache hit...
    epoch.vardi_gram(w);
    EXPECT_EQ(epoch.derived_builds(), 1u);
    // ...a different weight builds its own cached matrix, leaving the
    // first weight's (and any outstanding references to it) intact.
    const linalg::Matrix& other = epoch.vardi_gram(1.0);
    EXPECT_EQ(epoch.derived_builds(), 2u);
    EXPECT_EQ(other(0, 0), g1(0, 0) + g1(0, 0) * g1(0, 0));
    EXPECT_EQ(&epoch.vardi_gram(w), &transformed);
    EXPECT_EQ(epoch.derived_builds(), 2u);  // both weights stay cached
}

TEST(RoutingEpochDerived, SparseGramLazyBuildAndDenseGramUntouched) {
    const SmallNetwork net = tiny_network();
    RoutingEpochCache cache(2);
    const RoutingEpoch& epoch = cache.acquire(net.routing);

    EXPECT_FALSE(epoch.sparse_gram_built());
    const linalg::SparseMatrix& g = epoch.sparse_gram();
    EXPECT_TRUE(epoch.sparse_gram_built());
    const std::size_t builds = epoch.derived_builds();
    EXPECT_GE(builds, 1u);
    // Second call is a cache hit on the same object.
    EXPECT_EQ(&epoch.sparse_gram(), &g);
    EXPECT_EQ(epoch.derived_builds(), builds);
    // The CSR Gram never requires (or triggers) the dense Gram.
    EXPECT_FALSE(epoch.gram_built());

    // Values are exactly gram_sparse_csr of the routing copy.
    const linalg::SparseMatrix expected =
        linalg::gram_sparse_csr(net.routing);
    ASSERT_EQ(g.nonzeros(), expected.nonzeros());
    const linalg::Matrix gd = g.to_dense();
    const linalg::Matrix ed = expected.to_dense();
    for (std::size_t i = 0; i < ed.rows(); ++i) {
        for (std::size_t j = 0; j < ed.cols(); ++j) {
            EXPECT_EQ(gd(i, j), ed(i, j));
        }
    }
}

TEST(RoutingEpochDerived, FanoutConstraintsLazyBuild) {
    const SmallNetwork net = tiny_network();
    RoutingEpochCache cache(2);
    const RoutingEpoch& epoch = cache.acquire(net.routing);

    const core::FanoutConstraints& cached =
        epoch.fanout_constraints(net.topo);
    EXPECT_EQ(epoch.derived_builds(), 1u);
    epoch.fanout_constraints(net.topo);
    EXPECT_EQ(epoch.derived_builds(), 1u);

    const core::FanoutConstraints expected =
        core::FanoutConstraints::build(net.topo);
    ASSERT_EQ(cached.source_of, expected.source_of);
    ASSERT_EQ(cached.equality_sparse.rows(),
              expected.equality_sparse.rows());
    ASSERT_EQ(cached.equality_sparse.cols(),
              expected.equality_sparse.cols());
    ASSERT_EQ(cached.rhs, expected.rhs);
    const linalg::Matrix cached_dense = cached.equality_sparse.to_dense();
    const linalg::Matrix expected_dense =
        expected.equality_sparse.to_dense();
    for (std::size_t i = 0; i < expected_dense.rows(); ++i) {
        for (std::size_t j = 0; j < expected_dense.cols(); ++j) {
            EXPECT_EQ(cached_dense(i, j), expected_dense(i, j));
        }
    }

    // A topology that does not match the routing matrix is rejected.
    const SmallNetwork other = core::testing::europe_network();
    EXPECT_THROW(epoch.fanout_constraints(other.topo),
                 std::invalid_argument);
}

TEST(RoutingEpochDerived, ReducedFactorMemoAndEvictionSafety) {
    const SmallNetwork net = tiny_network();
    RoutingEpochCache cache(1);
    const RoutingEpoch& epoch = cache.acquire(net.routing);

    const std::vector<std::size_t> unknown{0, 2, 5};
    const double tau = 10.0;
    auto factor = epoch.reduced_factor(unknown, tau);
    EXPECT_EQ(epoch.derived_builds(), 1u);
    // Same selection: memo hit, same object.
    EXPECT_EQ(epoch.reduced_factor(unknown, tau).get(), factor.get());
    EXPECT_EQ(epoch.derived_builds(), 1u);
    // Different selection (the greedy sweep's pattern): rebuild.
    epoch.reduced_factor({0, 2}, tau);
    EXPECT_EQ(epoch.derived_builds(), 2u);

    // The factor's Gram equals the Gram of the column-selected routing.
    const linalg::Matrix expected =
        net.routing.select_columns(unknown).gram();
    ASSERT_EQ(factor->gram.rows(), unknown.size());
    for (std::size_t i = 0; i < unknown.size(); ++i) {
        for (std::size_t j = 0; j < unknown.size(); ++j) {
            EXPECT_NEAR(factor->gram(i, j), expected(i, j), 1e-12);
        }
    }

    // Evict the epoch (capacity 1) — the shared factor must stay
    // usable: derived data dies with the epoch, not with its users.
    const linalg::SparseMatrix rerouted =
        core::perturbed_routing(net.topo, 0.9, 42);
    ASSERT_NE(core::routing_fingerprint(rerouted),
              core::routing_fingerprint(net.routing));
    const RoutingEpoch& fresh = cache.acquire(rerouted);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(fresh.derived_builds(), 0u);  // lazily rebuilt per epoch
    const linalg::Vector rhs(unknown.size(), 1.0);
    EXPECT_EQ(factor->chol.solve(rhs).size(), unknown.size());
}

TEST(RoutingEpochCache, FingerprintCollisionIsNotServed) {
    // Force every matrix onto one fingerprint: the structural identity
    // check must keep two distinct routings in separate epochs instead
    // of silently serving the first one's Gram for the second.
    RoutingEpochCache cache(4, [](const linalg::SparseMatrix&) {
        return std::uint64_t{42};
    });

    const linalg::SparseMatrix a(
        2, 2, {{0, 0, 1.0}, {1, 1, 1.0}});
    const linalg::SparseMatrix b(
        2, 2, {{0, 0, 1.0}, {0, 1, 1.0}, {1, 1, 1.0}});  // different nnz

    const RoutingEpoch& ea = cache.acquire(a);
    const RoutingEpoch& eb = cache.acquire(b);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.collisions(), 1u);
    EXPECT_EQ(ea.fingerprint(), eb.fingerprint());
    // The serial disambiguates colliding epochs: it is what the engine
    // compares to decide whether the epoch (and thus the window) must
    // be flushed.
    EXPECT_NE(ea.serial(), eb.serial());
    EXPECT_EQ(linalg::max_abs_diff(ea.gram(), a.gram()), 0.0);
    EXPECT_EQ(linalg::max_abs_diff(eb.gram(), b.gram()), 0.0);

    // Both colliding epochs stay acquirable; each hit re-verifies
    // structure and lands on the right entry.
    EXPECT_EQ(linalg::max_abs_diff(cache.acquire(a).gram(), a.gram()),
              0.0);
    EXPECT_EQ(linalg::max_abs_diff(cache.acquire(b).gram(), b.gram()),
              0.0);
    EXPECT_EQ(cache.hits(), 2u);
}

TEST(RoutingEpochCache, EvictionRebuildsLazyDerivedData) {
    const SmallNetwork net = tiny_network();
    const linalg::SparseMatrix r2 =
        core::perturbed_routing(net.topo, 0.9, 1);
    const linalg::SparseMatrix r3 =
        core::perturbed_routing(net.topo, 0.9, 2);
    RoutingEpochCache cache(2);

    const RoutingEpoch& first = cache.acquire(net.routing);
    first.vardi_gram(1.0);
    first.fanout_constraints(net.topo);
    EXPECT_EQ(first.derived_builds(), 2u);

    // Fill the cache past capacity: the first epoch (LRU) is evicted
    // together with its derived data.
    cache.acquire(r2);
    cache.acquire(r3);
    EXPECT_EQ(cache.evictions(), 1u);

    // Re-acquiring the original routing is a miss that starts with a
    // clean derived slate (nothing stale can be served).
    const RoutingEpoch& rebuilt = cache.acquire(net.routing);
    EXPECT_EQ(cache.misses(), 4u);
    EXPECT_EQ(rebuilt.derived_builds(), 0u);
    const linalg::Matrix g1 = net.routing.gram();
    const linalg::Matrix& transformed = rebuilt.vardi_gram(0.5);
    EXPECT_EQ(transformed(0, 0), g1(0, 0) + 0.5 * g1(0, 0) * g1(0, 0));
}

}  // namespace
}  // namespace tme::engine
