// Miniature end-to-end reproductions of the paper's qualitative results.
// These guard the shape of every benched experiment so regressions are
// caught by ctest rather than by eyeballing bench output.
#include <gtest/gtest.h>

#include "core/bayesian.hpp"
#include "core/entropy.hpp"
#include "core/fanout.hpp"
#include "core/gravity.hpp"
#include "core/metrics.hpp"
#include "core/tomo_direct.hpp"
#include "core/vardi.hpp"
#include "core/wcb.hpp"
#include "linalg/stats.hpp"
#include "scenario/scenario.hpp"
#include "telemetry/poller.hpp"
#include "traffic/generator.hpp"
#include "traffic/traffic_matrix.hpp"

namespace tme {
namespace {

// Shared scenarios (built once; construction is the expensive part).
const scenario::Scenario& europe() {
    static const scenario::Scenario sc =
        scenario::make_scenario(scenario::Network::europe);
    return sc;
}

const scenario::Scenario& usa() {
    static const scenario::Scenario sc =
        scenario::make_scenario(scenario::Network::usa);
    return sc;
}

struct MethodErrors {
    double gravity = 0.0;
    double bayes = 0.0;
    double entropy = 0.0;
};

MethodErrors snapshot_errors(const scenario::Scenario& sc) {
    const core::SnapshotProblem snap = sc.busy_snapshot();
    const linalg::Vector& truth = sc.busy_snapshot_demands();
    const double thr = core::threshold_for_coverage(truth, 0.9);
    MethodErrors e;
    const linalg::Vector grav = core::gravity_estimate(snap);
    e.gravity = core::mean_relative_error(truth, grav, thr);
    core::BayesianOptions bo;
    bo.regularization = 1e4;
    e.bayes = core::mean_relative_error(
        truth, core::bayesian_estimate(snap, grav, bo), thr);
    core::EntropyOptions eo;
    eo.regularization = 1e3;
    e.entropy = core::mean_relative_error(
        truth, core::entropy_estimate(snap, grav, eo), thr);
    return e;
}

TEST(EndToEnd, RegularizedMethodsBeatGravityEurope) {
    const MethodErrors e = snapshot_errors(europe());
    // Paper Table 2 (Europe): gravity 0.26, Bayes 0.08, Entropy 0.11.
    EXPECT_LT(e.bayes, 0.6 * e.gravity);
    EXPECT_LT(e.entropy, 0.8 * e.gravity);
    EXPECT_LT(e.gravity, 0.45);
    EXPECT_GT(e.gravity, 0.15);
}

TEST(EndToEnd, RegularizedMethodsBeatGravityUsa) {
    const MethodErrors e = snapshot_errors(usa());
    // Paper Table 2 (America): gravity 0.78, Bayes 0.25, Entropy 0.22.
    EXPECT_LT(e.bayes, 0.5 * e.gravity);
    EXPECT_LT(e.entropy, 0.8 * e.gravity);
    EXPECT_GT(e.gravity, 0.4);
}

TEST(EndToEnd, GravityWorseInUsaThanEurope) {
    // Section 5.2.4: hotspot structure breaks gravity in the US network.
    EXPECT_GT(snapshot_errors(usa()).gravity,
              snapshot_errors(europe()).gravity);
}

TEST(EndToEnd, WcbPriorComparableAndConvergesAtLargeRegularization) {
    // Fig. 15's robust content: at large regularization the choice of
    // prior stops mattering, and the WCB midpoint is a usable prior in
    // its own right.  (The paper's data had tight enough bounds for the
    // midpoint to clearly BEAT gravity; our synthetic topologies give
    // looser bounds and the two priors are merely comparable — the
    // divergence is recorded in EXPERIMENTS.md.)
    const scenario::Scenario& sc = usa();
    const core::SnapshotProblem snap = sc.busy_snapshot();
    const linalg::Vector& truth = sc.busy_snapshot_demands();
    const double thr = core::threshold_for_coverage(truth, 0.9);
    const linalg::Vector grav = core::gravity_estimate(snap);
    const core::WcbResult wcb = core::worst_case_bounds(snap);

    // Comparable as raw priors (within 30%).
    const double prior_grav = core::mean_relative_error(truth, grav, thr);
    const double prior_wcb =
        core::mean_relative_error(truth, wcb.midpoint, thr);
    EXPECT_LT(prior_wcb, 1.3 * prior_grav);

    // Regularized estimation improves on each prior (large lambda pulls
    // both toward the load-consistent manifold).
    core::BayesianOptions bo;
    bo.regularization = 1e4;
    const double with_grav = core::mean_relative_error(
        truth, core::bayesian_estimate(snap, grav, bo), thr);
    const double with_wcb = core::mean_relative_error(
        truth, core::bayesian_estimate(snap, wcb.midpoint, bo), thr);
    EXPECT_LT(with_grav, prior_grav);
    EXPECT_LT(with_wcb, prior_wcb);
}

TEST(EndToEnd, WcbBoundsBracketTruthOnEurope) {
    const scenario::Scenario& sc = europe();
    const core::WcbResult wcb = core::worst_case_bounds(sc.busy_snapshot());
    const linalg::Vector& truth = sc.busy_snapshot_demands();
    EXPECT_EQ(wcb.failures, 0u);
    for (std::size_t p = 0; p < truth.size(); ++p) {
        EXPECT_LE(wcb.lower[p], truth[p] + 1e-6);
        EXPECT_GE(wcb.upper[p], truth[p] - 1e-6);
    }
}

TEST(EndToEnd, FanoutEstimationImprovesWithWindowThenSaturates) {
    // Fig. 11: error drops for short windows, then levels out.
    const scenario::Scenario& sc = europe();
    const linalg::Vector reference = sc.busy_mean_demands();
    const double thr = core::threshold_for_coverage(reference, 0.9);
    auto mre_for_window = [&](std::size_t k) {
        const core::FanoutResult r =
            core::fanout_estimate(sc.busy_series_window(k));
        return core::mean_relative_error(reference, r.mean_demands, thr);
    };
    const double w1 = mre_for_window(1);
    const double w10 = mre_for_window(10);
    const double w40 = mre_for_window(40);
    // The full window is at least as good as a single snapshot, and the
    // curve stays in one regime (the "levels out" of Fig. 11) — our
    // synthetic busy period is flatter than the paper's, so the initial
    // drop is milder (see EXPERIMENTS.md).
    EXPECT_LT(w40, w1 + 1e-9);
    EXPECT_LT(std::abs(w40 - w10), 0.5 * std::max(w10, w1) + 0.05);
    EXPECT_LT(std::max({w1, w10, w40}), 0.45);  // paper-range errors
}

TEST(EndToEnd, FanoutSolverNotWorseThanTrueFanoutsInObjective) {
    // Regression guard: with the default gravity tie-break, the fanout
    // QP solution's DATA objective must be within a few percent of what
    // the true mean fanouts achieve (an earlier penalty formulation
    // lost the data term under the penalty's conditioning and landed
    // 2.5x above it; the pure formulation without the tie-break also
    // fails this on flat busy-hour data — see EXPERIMENTS.md).
    const scenario::Scenario& sc = europe();
    const core::SeriesProblem series = sc.busy_series_window(10);
    const core::FanoutResult r = core::fanout_estimate(series);

    const linalg::Vector true_fanouts = traffic::fanouts_from_demands(
        sc.topo.pop_count(), sc.busy_mean_demands());
    auto objective = [&](const linalg::Vector& alpha) {
        double acc = 0.0;
        for (const linalg::Vector& t : series.loads) {
            linalg::Vector s(alpha.size());
            for (std::size_t p = 0; p < alpha.size(); ++p) {
                const auto [src, dst] = sc.topo.pair_nodes(p);
                (void)dst;
                s[p] = alpha[p] * t[sc.topo.ingress_link(src)];
            }
            const linalg::Vector resid =
                linalg::sub(sc.routing.multiply(s), t);
            acc += linalg::dot(resid, resid);
        }
        return acc;
    };
    EXPECT_LE(objective(r.fanouts), 1.10 * objective(true_fanouts));
    EXPECT_LT(r.equality_violation, 1e-8);
}

TEST(EndToEnd, VardiPoorOnRealLikeTraffic) {
    // Table 1: sigma^-2 = 1 is catastrophic, 0.01 mediocre; both far
    // worse than the regularized snapshot methods.
    const scenario::Scenario& sc = europe();
    const core::SeriesProblem series = sc.busy_series();
    const linalg::Vector reference = sc.busy_mean_demands();
    const double thr = core::threshold_for_coverage(reference, 0.9);

    core::VardiOptions strong;
    strong.second_moment_weight = 1.0;
    const double mre_strong = core::mean_relative_error(
        reference, core::vardi_estimate(series, strong).lambda, thr);

    core::VardiOptions weak;
    weak.second_moment_weight = 0.01;
    const double mre_weak = core::mean_relative_error(
        reference, core::vardi_estimate(series, weak).lambda, thr);

    const MethodErrors e = snapshot_errors(sc);
    EXPECT_GT(mre_weak, e.bayes);
    EXPECT_GT(mre_strong, 0.3);
}

TEST(EndToEnd, VardiSyntheticPoissonNeedsLargeWindows) {
    // Fig. 12: even on true Poisson data, small windows give large MRE
    // and accuracy improves with window size.
    const scenario::Scenario& sc = europe();
    linalg::Vector lambda = sc.busy_mean_demands();
    // Scale to Mbps so Poisson counts have realistic relative noise.
    for (double& v : lambda) v *= sc.scale_mbps;
    const double thr = core::threshold_for_coverage(lambda, 0.9);

    auto mre_for_window = [&](std::size_t k) {
        const auto demands =
            traffic::generate_poisson_series(lambda, 1.0, k, 33);
        core::SeriesProblem series;
        series.topo = &sc.topo;
        series.routing = &sc.routing;
        for (const auto& s : demands) {
            series.loads.push_back(sc.routing.multiply(s));
        }
        core::VardiOptions options;
        options.second_moment_weight = 1.0;
        return core::mean_relative_error(
            lambda, core::vardi_estimate(series, options).lambda, thr);
    };
    const double small = mre_for_window(20);
    const double large = mre_for_window(400);
    EXPECT_LT(large, small);
}

TEST(EndToEnd, DirectMeasurementsCollapseEntropyError) {
    // Fig. 16: measuring a handful of (greedily chosen) demands slashes
    // the MRE.
    const scenario::Scenario& sc = europe();
    const core::SnapshotProblem snap = sc.busy_snapshot();
    const linalg::Vector& truth = sc.busy_snapshot_demands();
    const linalg::Vector grav = core::gravity_estimate(snap);
    core::DirectMeasurementOptions options;
    options.max_measured = 8;
    options.estimator = [](const core::SnapshotProblem& p,
                           const linalg::Vector& prior) {
        core::BayesianOptions bo;
        bo.regularization = 1e4;
        return core::bayesian_estimate(p, prior, bo);
    };
    const core::DirectMeasurementCurve curve =
        core::greedy_direct_measurements(snap, grav, truth, options);
    ASSERT_EQ(curve.mre.size(), 9u);
    EXPECT_LT(curve.mre.back(), 0.5 * curve.mre.front());
}

TEST(EndToEnd, PollerMeasuresScenarioLoadsAccurately) {
    // Telemetry path: polling the true rate series reproduces the loads
    // within the boundary-sliver error.
    const scenario::Scenario& sc = europe();
    std::vector<std::vector<double>> rates;
    for (std::size_t k = 0; k < 36; ++k) {
        rates.push_back(sc.loads[200 + k]);
    }
    telemetry::PollerConfig config;
    config.jitter_stddev_seconds = 2.0;
    config.loss_probability = 0.01;
    config.seed = 4;
    const telemetry::PollingOutcome out =
        telemetry::simulate_polling(rates, config);
    linalg::Vector rel_errors;
    for (std::size_t k = 1; k < rates.size(); ++k) {
        const auto snap = out.store.snapshot(k);
        for (std::size_t l = 0; l < snap.size(); ++l) {
            if (rates[k][l] > 1e-6) {
                rel_errors.push_back(std::abs(snap[l] - rates[k][l]) /
                                     rates[k][l]);
            }
        }
    }
    // Rate-adjusted polling stays close: tiny typical error, modest
    // tail (interpolated losses across rate changes).
    EXPECT_LT(linalg::quantile(rel_errors, 0.5), 0.02);
    EXPECT_LT(linalg::quantile(rel_errors, 0.95), 0.25);
}

}  // namespace
}  // namespace tme
