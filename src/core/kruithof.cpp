#include "core/kruithof.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "check/contract.hpp"
#include "check/validators.hpp"

namespace tme::core {

namespace {

/// Exact convergence measure of the classic IPF iterate: worst relative
/// marginal violation over rows and columns.
double ipf_violation(const linalg::Vector& rt, const linalg::Vector& ct,
                     const linalg::Vector& row_totals,
                     const linalg::Vector& col_totals) {
    double viol = 0.0;
    for (std::size_t i = 0; i < row_totals.size(); ++i) {
        if (row_totals[i] > 0.0) {
            viol = std::max(viol,
                            std::abs(rt[i] - row_totals[i]) / row_totals[i]);
        }
        if (col_totals[i] > 0.0) {
            viol = std::max(viol,
                            std::abs(ct[i] - col_totals[i]) / col_totals[i]);
        }
    }
    return viol;
}

}  // namespace

KruithofResult kruithof_ipf(std::size_t nodes, const linalg::Vector& prior,
                            const linalg::Vector& row_totals,
                            const linalg::Vector& col_totals,
                            const KruithofOptions& options) {
    if (prior.size() != nodes * (nodes - 1) || row_totals.size() != nodes ||
        col_totals.size() != nodes) {
        throw std::invalid_argument("kruithof_ipf: size mismatch");
    }
    const double row_sum = linalg::sum(row_totals);
    const double col_sum = linalg::sum(col_totals);
    if (row_sum <= 0.0 ||
        std::abs(row_sum - col_sum) > 1e-9 * std::max(row_sum, col_sum)) {
        throw std::invalid_argument(
            "kruithof_ipf: row and column totals must agree");
    }

    // Flat biproportional fitting on the pair vector itself.  Pair
    // (i, j) lives at i*(nodes-1) + (j < i ? j : j-1): each source's
    // demands are one contiguous block, so the row pass is a pure
    // streaming sweep and the column pass a fixed-stride one — no
    // N x N matrix, no per-element bounds-checked set() calls, and the
    // diagonal is skipped structurally instead of being re-tested
    // N^2 times per sweep.  Summation order matches the historical
    // TrafficMatrix row_totals()/col_totals() walks (the diagonal's
    // exact 0.0 contributions drop out of the chains), so iterates are
    // bit-for-bit the old path's.
    const std::size_t stride = nodes - 1;
    KruithofResult result;
    result.s = prior;
    double* __restrict s = result.s.data();
    linalg::Vector rt(nodes, 0.0);
    linalg::Vector ct(nodes, 0.0);
    const std::size_t check_every = std::max<std::size_t>(
        1, options.check_every);
    bool budget_tripped = false;
    for (result.iterations = 0; result.iterations < options.max_iterations;
         ++result.iterations) {
        if (options.budget != nullptr && options.budget->exhausted()) {
            budget_tripped = true;
            break;
        }
        // Row scaling.
        for (std::size_t i = 0; i < nodes; ++i) {
            double* __restrict block = s + i * stride;
            double acc = 0.0;
            for (std::size_t k = 0; k < stride; ++k) acc += block[k];
            rt[i] = acc;
            if (acc <= 0.0) continue;
            const double f = row_totals[i] / acc;
            for (std::size_t k = 0; k < stride; ++k) block[k] *= f;
        }
        // Column scaling: destination j's entry in source i's block
        // sits at offset j when j < i (diagonal not yet skipped) and
        // j - 1 when j > i.
        for (std::size_t j = 0; j < nodes; ++j) {
            double acc = 0.0;
            for (std::size_t i = 0; i < nodes; ++i) {
                if (i == j) continue;
                acc += s[i * stride + (j < i ? j : j - 1)];
            }
            ct[j] = acc;
            if (acc <= 0.0) continue;
            const double f = col_totals[j] / acc;
            for (std::size_t i = 0; i < nodes; ++i) {
                if (i == j) continue;
                s[i * stride + (j < i ? j : j - 1)] *= f;
            }
        }
        // Violation check (after the column pass, rows may drift),
        // every check_every sweeps and always on the final one.
        if ((result.iterations + 1) % check_every != 0 &&
            result.iterations + 1 != options.max_iterations) {
            continue;
        }
        for (std::size_t i = 0; i < nodes; ++i) {
            const double* __restrict block = s + i * stride;
            double acc = 0.0;
            for (std::size_t k = 0; k < stride; ++k) acc += block[k];
            rt[i] = acc;
        }
        for (std::size_t j = 0; j < nodes; ++j) {
            double acc = 0.0;
            for (std::size_t i = 0; i < nodes; ++i) {
                if (i == j) continue;
                acc += s[i * stride + (j < i ? j : j - 1)];
            }
            ct[j] = acc;
        }
        result.max_violation = ipf_violation(rt, ct, row_totals, col_totals);
        if (result.max_violation <= options.tolerance) {
            result.converged = true;
            break;
        }
    }
    result.outcome = result.converged
                         ? linalg::SolveOutcome::converged
                     : budget_tripped
                         ? linalg::SolveOutcome::budget_exhausted
                         : linalg::SolveOutcome::iteration_capped;
    if (options.counters != nullptr) {
        options.counters->kruithof_sweeps += result.iterations;
    }
    TME_CONTRACT_DBG_CHECK(check::solver_boundary(
        "kruithof_ipf", result.s, /*require_nonnegative=*/true));
    return result;
}

KruithofResult kruithof_general(const SnapshotProblem& problem,
                                const linalg::Vector& prior,
                                const KruithofOptions& options) {
    problem.validate();
    const linalg::SparseMatrix& r = *problem.routing;
    if (prior.size() != r.cols()) {
        throw std::invalid_argument("kruithof_general: prior size mismatch");
    }
    const linalg::Vector& t = problem.loads;

    double tmax = linalg::nrm_inf(t);
    if (tmax == 0.0) tmax = 1.0;

    KruithofResult result;
    result.s = prior;
    // Strictly positive start.
    double pmean = linalg::sum(result.s) /
                   static_cast<double>(result.s.size());
    if (pmean <= 0.0) {
        throw std::invalid_argument("kruithof_general: degenerate prior");
    }
    for (double& v : result.s) v = std::max(v, 1e-12 * pmean);

    const auto& offsets = r.row_offsets();
    const auto& cols = r.column_indices();
    const auto& vals = r.values();
    const std::size_t rows = r.rows();
    const std::size_t nnz = vals.size();

    // One fused, sequential O(nnz) pass per sweep.  Each constraint's
    // prediction is read fresh from the row scan the MART update needs
    // anyway, and the convergence measure piggy-backs on it — the
    // historical loop paid a separate full R s re-multiply (plus a
    // vector allocation) per sweep just for its convergence check.
    // The measured violation is therefore the in-sweep one (each row's
    // residual before its own rescale); candidate convergences and the
    // final report are confirmed against an exact post-sweep
    // re-multiply, so the reported violation has the historical
    // meaning and a false convergence is impossible.
    //
    // The sweep is memory-gather bound, so the index array is narrowed
    // to 32 bits once up front (half the index traffic of the CSR's
    // size_t columns), and rows whose routing entries are all exactly
    // 1.0 — every row of a non-ECMP IGP matrix — are flagged so their
    // scans skip the values array (and its load) entirely and their
    // updates skip pow.
    std::vector<std::uint32_t> cols32(nnz);
    for (std::size_t k = 0; k < nnz; ++k) {
        cols32[k] = static_cast<std::uint32_t>(cols[k]);
    }
    std::vector<std::uint8_t> row_unit(rows, 0);
    for (std::size_t l = 0; l < rows; ++l) {
        bool unit = true;
        for (std::size_t k = offsets[l]; k < offsets[l + 1] && unit; ++k) {
            unit = vals[k] == 1.0;
        }
        row_unit[l] = unit ? 1 : 0;
    }

    linalg::Vector exact;
    double* __restrict s = result.s.data();
    const std::uint32_t* __restrict ci = cols32.data();
    const double* __restrict rv = vals.data();
    const std::size_t* __restrict off = offsets.data();
    const double inv_tmax = 1.0 / tmax;
    const std::size_t check_every = std::max<std::size_t>(
        1, options.check_every);

    bool budget_tripped = false;
    for (result.iterations = 0; result.iterations < options.max_iterations;
         ++result.iterations) {
        if (options.budget != nullptr && options.budget->exhausted()) {
            budget_tripped = true;
            break;
        }
        // Cyclic MART pass: for each constraint l, scale the demands on
        // the constraint multiplicatively toward t_l.  Exponent
        // r_lp/max_l keeps the update stable for fractional matrices.
        double viol = 0.0;
        for (std::size_t l = 0; l < rows; ++l) {
            const std::size_t begin = off[l];
            const std::size_t end = off[l + 1];
            double pred = 0.0;
            if (row_unit[l]) {
                for (std::size_t k = begin; k < end; ++k) {
                    pred += s[ci[k]];
                }
            } else {
                for (std::size_t k = begin; k < end; ++k) {
                    pred += rv[k] * s[ci[k]];
                }
            }
            viol = std::max(viol, std::abs(pred - t[l]) * inv_tmax);
            if (pred <= 0.0) continue;
            if (t[l] <= 0.0) {
                // Zero measured load: demands on this link must vanish.
                for (std::size_t k = begin; k < end; ++k) {
                    s[ci[k]] = 0.0;
                }
                continue;
            }
            const double ratio = t[l] / pred;
            if (ratio == 1.0) continue;
            if (row_unit[l]) {
                for (std::size_t k = begin; k < end; ++k) {
                    s[ci[k]] *= ratio;
                }
            } else {
                for (std::size_t k = begin; k < end; ++k) {
                    s[ci[k]] *= std::pow(ratio, rv[k]);
                }
            }
        }

        const bool last = result.iterations + 1 == options.max_iterations;
        if ((result.iterations + 1) % check_every != 0 && !last) continue;

        if (viol <= options.tolerance || last) {
            // Exact confirmation: relative residual of R s = t after
            // the full sweep.
            r.multiply_into(result.s, exact);
            viol = 0.0;
            for (std::size_t l = 0; l < rows; ++l) {
                viol = std::max(viol, std::abs(exact[l] - t[l]) * inv_tmax);
            }
        }
        result.max_violation = viol;
        if (viol <= options.tolerance) {
            result.converged = true;
            break;
        }
    }
    result.outcome = result.converged
                         ? linalg::SolveOutcome::converged
                     : budget_tripped
                         ? linalg::SolveOutcome::budget_exhausted
                         : linalg::SolveOutcome::iteration_capped;
    if (options.counters != nullptr) {
        options.counters->kruithof_sweeps += result.iterations;
    }
    TME_CONTRACT_DBG_CHECK(check::solver_boundary(
        "kruithof_general", result.s, /*require_nonnegative=*/true));
    return result;
}

}  // namespace tme::core
