// Reference topology builders.
//
// The paper evaluates on two subnetworks extracted from Global Crossing's
// backbone: Europe (12 PoPs, 132 OD pairs, 72 links) and America (25
// PoPs, 600 OD pairs, 284 links), where the link counts include edge
// (access/peering) links.  The exact operator topology is proprietary, so
// these builders construct continental backbones with identical published
// dimensions:
//
//   * europe_backbone(): 12 PoPs, 24 access links + 48 directed core
//     links (24 bidirectional adjacencies) = 72 links, hand-crafted from
//     typical pan-European fibre adjacencies.
//   * us_backbone(): 25 PoPs, 50 access links + 234 directed core links
//     (117 bidirectional adjacencies) = 284 links; adjacencies chosen
//     deterministically by geographic proximity plus long-haul chords
//     (spanning tree first, then shortest remaining pairs subject to a
//     degree cap).
//
// PoP weights model relative served population; they drive the synthetic
// demand generator.
#pragma once

#include "topology/topology.hpp"

namespace tme::topology {

/// Europe-like backbone: 12 PoPs / 72 links (48 core + 24 edge).
Topology europe_backbone();

/// USA-like backbone: 25 PoPs / 284 links (234 core + 50 edge).
Topology us_backbone();

/// Small 4-PoP test network (4 PoPs, 8 edge + 10 core = 18 links);
/// convenient for unit tests and the quickstart example.
Topology tiny_backbone();

/// Deterministic pseudo-random backbone for property tests: `pops` PoPs
/// placed on a grid, connected (spanning tree + extra chords) with the
/// given average core degree.  Same seed -> same topology.
Topology random_backbone(std::size_t pops, double avg_core_degree,
                         unsigned seed);

/// Deterministic parametric backbone with the paper-like access/core
/// structure of the hand-built continental networks, at arbitrary
/// scale — the stress-scaling workload (hundreds of PoPs) the sparse
/// and blocked solver kernels exist for.  Construction mirrors
/// us_backbone(): PoPs on a jittered continental grid with a Zipf-like
/// hub hierarchy in the weights (a handful of PoPs dominate traffic,
/// reproducing the paper's Fig. 3 concentration), distance-derived IGP
/// metrics, a Kruskal spanning tree on great-circle distance, proximity
/// chords under a degree cap up to `avg_core_degree`, and long-haul
/// express chords between the top hubs.  Every choice is a pure
/// function of (pops, avg_core_degree, seed): the same arguments yield
/// the same topology bit for bit, and therefore the same routing-matrix
/// fingerprint.
Topology generated_backbone(std::size_t pops, double avg_core_degree,
                            unsigned seed);

}  // namespace tme::topology
