// Entropy / information-theoretic estimation (paper Section 4.2.1, eq. 6;
// Zhang et al., SIGCOMM 2003).
//
//     minimize  ||R s - t||^2 + sigma^{-2} D(s || s_prior),   s >= 0,
//
// where D is the (generalized) Kullback-Leibler distance from the prior.
// Like the Bayesian method this is parameterized by lambda = sigma^2; the
// optimization is delegated to the exponentiated-gradient solver in
// linalg (the objective is convex over the positive orthant).
#pragma once

#include "core/problem.hpp"
#include "linalg/entropy_solver.hpp"

namespace tme::core {

struct EntropyOptions {
    /// Regularization parameter lambda = sigma^2 (> 0).
    double regularization = 1000.0;
    linalg::EntropySolverOptions solver;
};

/// Entropy-regularized estimate.  `prior` is pair-indexed and is clamped
/// strictly positive internally.
linalg::Vector entropy_estimate(const SnapshotProblem& problem,
                                const linalg::Vector& prior,
                                const EntropyOptions& options = {});

}  // namespace tme::core
