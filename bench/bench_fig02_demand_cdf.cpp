// Figure 2: cumulative demand distribution — the top 20% of demands
// carry ~80% of traffic in both subnetworks.
#include "bench_common.hpp"

namespace {

void cdf(const tme::scenario::Scenario& sc) {
    using namespace tme;
    linalg::Vector s = sc.busy_mean_demands();
    std::sort(s.begin(), s.end(), std::greater<>());
    const double total = linalg::sum(s);
    std::printf("\n%s (%zu demands):\n", sc.name.c_str(), s.size());
    std::printf("%-22s %12s\n", "top fraction of demands",
                "traffic share");
    double acc = 0.0;
    std::size_t next_mark = 1;
    const std::size_t marks[] = {5, 10, 20, 30, 40, 50, 75, 100};
    std::size_t mi = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
        acc += s[i];
        const double frac =
            100.0 * static_cast<double>(i + 1) / static_cast<double>(s.size());
        while (mi < std::size(marks) &&
               frac >= static_cast<double>(marks[mi])) {
            std::printf("%20zu%% %11.1f%%  %s\n", marks[mi],
                        100.0 * acc / total,
                        bench::bar(acc / total, 1.0, 30).c_str());
            ++mi;
        }
    }
    (void)next_mark;
    // The paper's headline number:
    acc = 0.0;
    for (std::size_t i = 0; i < s.size() / 5; ++i) acc += s[i];
    std::printf("top 20%% of demands carry %.1f%% of traffic (paper: ~80%%)\n",
                100.0 * acc / total);
}

}  // namespace

int main() {
    tme::bench::header(
        "Figure 2 - cumulative demand distribution",
        "Fig. 2: top 20% of demands account for ~80% of traffic",
        "strongly concave CDF in both networks");
    cdf(tme::bench::europe());
    cdf(tme::bench::usa());
    return 0;
}
