#include "core/bayesian.hpp"

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "test_helpers.hpp"

namespace tme::core {
namespace {

using testing::SmallNetwork;
using testing::tiny_network;

TEST(Bayesian, TruePriorIsFixedPoint) {
    const SmallNetwork net = tiny_network();
    BayesianOptions options;
    options.regularization = 100.0;
    const linalg::Vector est =
        bayesian_estimate(net.snapshot(), net.truth, options);
    for (std::size_t p = 0; p < net.truth.size(); ++p) {
        EXPECT_NEAR(est[p], net.truth[p], 1e-6);
    }
}

TEST(Bayesian, SmallRegularizationSticksToPrior) {
    const SmallNetwork net = tiny_network();
    linalg::Vector prior(net.truth.size(), 1.0);
    BayesianOptions options;
    options.regularization = 1e-9;  // w huge -> prior dominates
    const linalg::Vector est =
        bayesian_estimate(net.snapshot(), prior, options);
    for (std::size_t p = 0; p < prior.size(); ++p) {
        EXPECT_NEAR(est[p], prior[p], 1e-3);
    }
}

TEST(Bayesian, LargeRegularizationMatchesLoads) {
    const SmallNetwork net = tiny_network();
    linalg::Vector prior(net.truth.size(), 1.0);
    BayesianOptions options;
    options.regularization = 1e8;
    const linalg::Vector est =
        bayesian_estimate(net.snapshot(), prior, options);
    const linalg::Vector pred = net.routing.multiply(est);
    const SnapshotProblem snap = net.snapshot();
    for (std::size_t l = 0; l < pred.size(); ++l) {
        EXPECT_NEAR(pred[l], snap.loads[l], 1e-4 * (1.0 + snap.loads[l]));
    }
}

TEST(Bayesian, EstimatesAreNonNegative) {
    const SmallNetwork net = tiny_network(9);
    // Deliberately bad prior with big values.
    linalg::Vector prior(net.truth.size(), 10.0);
    const linalg::Vector est = bayesian_estimate(net.snapshot(), prior);
    for (double v : est) EXPECT_GE(v, 0.0);
}

TEST(Bayesian, ImprovesOnScaledPrior) {
    // Prior = truth * 0.5: the link data fixes most of the scale error.
    const SmallNetwork net = tiny_network(5);
    linalg::Vector prior = net.truth;
    for (double& v : prior) v *= 0.5;
    BayesianOptions options;
    options.regularization = 1e6;
    const linalg::Vector est =
        bayesian_estimate(net.snapshot(), prior, options);
    EXPECT_LT(mre_at_coverage(net.truth, est, 0.9),
              mre_at_coverage(net.truth, prior, 0.9));
}

TEST(Bayesian, Validation) {
    const SmallNetwork net = tiny_network();
    EXPECT_THROW(
        bayesian_estimate(net.snapshot(), linalg::Vector(3, 1.0)),
        std::invalid_argument);
    BayesianOptions bad;
    bad.regularization = 0.0;
    EXPECT_THROW(bayesian_estimate(net.snapshot(), net.truth, bad),
                 std::invalid_argument);
}

TEST(Bayesian, WorksWithoutTopology) {
    // The Bayesian estimator needs only (R, t).
    const SmallNetwork net = tiny_network();
    SnapshotProblem snap = net.snapshot();
    snap.topo = nullptr;
    const linalg::Vector est = bayesian_estimate(snap, net.truth);
    EXPECT_EQ(est.size(), net.truth.size());
}

class BayesianMonotonicity : public ::testing::TestWithParam<unsigned> {};

TEST_P(BayesianMonotonicity, ResidualDecreasesWithRegularization) {
    const SmallNetwork net = tiny_network(GetParam());
    linalg::Vector prior(net.truth.size(), 1.0);
    const SnapshotProblem snap = net.snapshot();
    double prev_resid = 1e300;
    for (double lam : {1e-3, 1e0, 1e3, 1e6}) {
        BayesianOptions options;
        options.regularization = lam;
        const linalg::Vector est = bayesian_estimate(snap, prior, options);
        const double resid =
            linalg::nrm2(linalg::sub(net.routing.multiply(est), snap.loads));
        EXPECT_LE(resid, prev_resid + 1e-9);
        prev_resid = resid;
    }
}

TEST(Bayesian, SparseGramFactoredPathMatchesNnls) {
    // The CSR-Gram factored-QP path must land on the NNLS path's
    // minimizer: the MAP system is strictly convex, so the minimizer is
    // unique and solver-independent.
    const SmallNetwork net = core::testing::europe_network();
    const SnapshotProblem snap = net.snapshot();
    linalg::Vector prior(net.truth.size(), 1.0);
    const linalg::Vector dense_path = bayesian_estimate(snap, prior);

    const linalg::SparseMatrix sparse_gram =
        linalg::gram_sparse_csr(net.routing);
    BayesianOptions options;
    options.shared_sparse_gram = &sparse_gram;
    const linalg::Vector sparse_path =
        bayesian_estimate(snap, prior, options);
    ASSERT_EQ(sparse_path.size(), dense_path.size());
    double scale = 1.0;
    for (double v : dense_path) scale = std::max(scale, v);
    for (std::size_t p = 0; p < dense_path.size(); ++p) {
        EXPECT_NEAR(sparse_path[p], dense_path[p], 1e-9 * scale)
            << "pair " << p;
    }

    // Warm start through the factored path: same minimizer.
    BayesianOptions warm = options;
    warm.warm_start = &sparse_path;
    const linalg::Vector warm_path = bayesian_estimate(snap, prior, warm);
    for (std::size_t p = 0; p < dense_path.size(); ++p) {
        EXPECT_NEAR(warm_path[p], dense_path[p], 1e-9 * scale);
    }

    // Dimension mismatch is rejected.
    const linalg::SparseMatrix wrong(3, 3, {});
    BayesianOptions bad;
    bad.shared_sparse_gram = &wrong;
    EXPECT_THROW(bayesian_estimate(snap, prior, bad),
                 std::invalid_argument);
}

TEST(Bayesian, SparseGramForcedCgPathStaysClose) {
    // dense_kkt_limit = 0 exercises the projected-CG branch even at
    // paper scale; the strictly convex minimizer is unchanged.
    const SmallNetwork net = tiny_network(3);
    const SnapshotProblem snap = net.snapshot();
    linalg::Vector prior(net.truth.size(), 1.0);
    const linalg::Vector dense_path = bayesian_estimate(snap, prior);
    const linalg::SparseMatrix sparse_gram =
        linalg::gram_sparse_csr(net.routing);
    BayesianOptions options;
    options.shared_sparse_gram = &sparse_gram;
    options.qp.dense_kkt_limit = 0;
    const linalg::Vector cg_path = bayesian_estimate(snap, prior, options);
    double scale = 1.0;
    for (double v : dense_path) scale = std::max(scale, v);
    for (std::size_t p = 0; p < dense_path.size(); ++p) {
        EXPECT_NEAR(cg_path[p], dense_path[p], 1e-6 * scale);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BayesianMonotonicity,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace tme::core
