#include "linalg/nnls.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "check/contract.hpp"
#include "check/validators.hpp"
#include "linalg/cholesky.hpp"

namespace tme::linalg {

namespace {

// Maintains the Cholesky factor of G[passive, passive] incrementally:
// appending a variable costs O(k^2); removals trigger a rebuild (O(k^3),
// rare in practice).  This keeps Lawson-Hanson at ~O(n^3) overall instead
// of the O(n^4) a refactorize-every-step implementation would cost.
class PassiveFactor {
  public:
    /// `shift` is the virtual diagonal shift of NnlsOptions: every read
    /// of a diagonal Gram entry adds it, as if the caller had passed
    /// G + shift*I.
    PassiveFactor(const Matrix& gram, double jitter, double shift)
        : gram_(&gram),
          jitter_(jitter),
          shift_(shift),
          l_(gram.rows(), gram.rows(), 0.0) {}

    const std::vector<std::size_t>& passive() const { return passive_; }

    bool append(std::size_t j) {
        const std::size_t k = passive_.size();
        // New column: c = G[passive + {j}, j].
        Vector c(k);
        for (std::size_t i = 0; i < k; ++i) c[i] = (*gram_)(passive_[i], j);
        // Solve L w = c (forward substitution on the kxk leading block).
        Vector w(k);
        for (std::size_t i = 0; i < k; ++i) {
            double v = c[i];
            for (std::size_t t = 0; t < i; ++t) v -= l_(i, t) * w[t];
            w[i] = v / l_(i, i);
        }
        double diag = (*gram_)(j, j) + shift_ + jitter_ - dot(w, w);
        if (diag <= 0.0 || !std::isfinite(diag)) {
            // Rank-deficient addition: retry with escalated jitter via a
            // full rebuild including j.
            passive_.push_back(j);
            if (rebuild()) return true;
            passive_.pop_back();
            rebuild();
            return false;
        }
        for (std::size_t i = 0; i < k; ++i) l_(k, i) = w[i];
        l_(k, k) = std::sqrt(diag);
        passive_.push_back(j);
        return true;
    }

    void remove_indices(const std::vector<std::size_t>& to_remove) {
        std::vector<std::size_t> next;
        next.reserve(passive_.size());
        for (std::size_t j : passive_) {
            if (std::find(to_remove.begin(), to_remove.end(), j) ==
                to_remove.end()) {
                next.push_back(j);
            }
        }
        passive_.swap(next);
        rebuild();
    }

    // Solves G[passive,passive] z = rhs[passive].
    Vector solve(const Vector& atb) const {
        const std::size_t k = passive_.size();
        Vector y(k);
        for (std::size_t i = 0; i < k; ++i) {
            double v = atb[passive_[i]];
            for (std::size_t t = 0; t < i; ++t) v -= l_(i, t) * y[t];
            y[i] = v / l_(i, i);
        }
        Vector z(k);
        for (std::size_t ii = k; ii-- > 0;) {
            double v = y[ii];
            for (std::size_t t = ii + 1; t < k; ++t) v -= l_(t, ii) * z[t];
            z[ii] = v / l_(ii, ii);
        }
        return z;
    }

  private:
    bool rebuild() {
        const std::size_t k = passive_.size();
        double jitter = jitter_;
        for (int attempt = 0; attempt < 20; ++attempt) {
            bool ok = true;
            for (std::size_t col = 0; col < k && ok; ++col) {
                double diag =
                    (*gram_)(passive_[col], passive_[col]) + shift_ + jitter;
                for (std::size_t t = 0; t < col; ++t) {
                    diag -= l_(col, t) * l_(col, t);
                }
                if (diag <= 0.0 || !std::isfinite(diag)) {
                    ok = false;
                    break;
                }
                l_(col, col) = std::sqrt(diag);
                for (std::size_t row = col + 1; row < k; ++row) {
                    double v = (*gram_)(passive_[row], passive_[col]);
                    for (std::size_t t = 0; t < col; ++t) {
                        v -= l_(row, t) * l_(col, t);
                    }
                    l_(row, col) = v / l_(col, col);
                }
            }
            if (ok) {
                jitter_ = jitter;
                return true;
            }
            double scale = 0.0;
            for (std::size_t i = 0; i < k; ++i) {
                scale = std::max(
                    scale, (*gram_)(passive_[i], passive_[i]) + shift_);
            }
            jitter = (jitter == 0.0 ? std::max(scale, 1.0) * 1e-12
                                    : jitter * 100.0);
        }
        return false;
    }

    const Matrix* gram_;
    double jitter_;
    double shift_;
    Matrix l_;  // leading k x k block holds the factor
    std::vector<std::size_t> passive_;
};

}  // namespace

NnlsResult nnls_gram(const Matrix& gram_matrix, const Vector& atb, double btb,
                     const NnlsOptions& options) {
    const std::size_t n = atb.size();
    if (gram_matrix.rows() != n || gram_matrix.cols() != n) {
        throw std::invalid_argument("nnls_gram: dimension mismatch");
    }
    TME_CONTRACT_DBG_CHECK(
        check::solver_boundary("nnls_gram", gram_matrix, atb));
    if (options.gram_operator != nullptr) {
        TME_CONTRACT_DBG_CHECK(check::csr_structure(
            *options.gram_operator, "nnls_gram gram_operator"));
    }
    if (options.gram_operator != nullptr &&
        options.gram_operator->cols() != n) {
        throw std::invalid_argument(
            "nnls_gram: gram_operator column count does not match the "
            "Gram system");
    }
    if (options.gram_diagonal_shift < 0.0) {
        throw std::invalid_argument(
            "nnls_gram: negative gram_diagonal_shift");
    }
    const double shift = options.gram_diagonal_shift;
    const SparseMatrix* op = options.gram_operator;
    const std::size_t max_iter =
        options.max_iterations > 0 ? options.max_iterations : 3 * n + 16;

    NnlsResult result;
    result.x.assign(n, 0.0);
    std::vector<bool> in_passive(n, false);
    PassiveFactor factor(gram_matrix, 0.0, shift);

    double scale = nrm_inf(atb);
    if (scale == 0.0) scale = 1.0;
    const double tol = options.tolerance * scale;

    // Dual w = g - G x; x = 0 initially.
    Vector w = atb;

    // Inner loop: restore primal feasibility of the passive solve.
    const auto restore_feasibility = [&]() {
        while (true) {
            const std::vector<std::size_t>& passive = factor.passive();
            Vector z = factor.solve(atb);
            bool all_positive = true;
            for (double v : z) {
                if (v <= 0.0) {
                    all_positive = false;
                    break;
                }
            }
            if (all_positive) {
                for (std::size_t i = 0; i < passive.size(); ++i) {
                    result.x[passive[i]] = z[i];
                }
                break;
            }
            double alpha = 1.0;
            for (std::size_t i = 0; i < passive.size(); ++i) {
                if (z[i] <= 0.0) {
                    const double xj = result.x[passive[i]];
                    const double denom = xj - z[i];
                    if (denom > 0.0) alpha = std::min(alpha, xj / denom);
                }
            }
            double xmax = 0.0;
            for (std::size_t i = 0; i < passive.size(); ++i) {
                const std::size_t j = passive[i];
                result.x[j] = result.x[j] + alpha * (z[i] - result.x[j]);
                xmax = std::max(xmax, result.x[j]);
            }
            // Remove coordinates pinned at (numerical) zero by the step.
            const double removal_tol = 1e-12 * std::max(1.0, xmax);
            std::vector<std::size_t> to_remove;
            for (std::size_t i = 0; i < passive.size(); ++i) {
                const std::size_t j = passive[i];
                if (result.x[j] <= removal_tol && z[i] <= 0.0) {
                    result.x[j] = 0.0;
                    to_remove.push_back(j);
                    in_passive[j] = false;
                }
            }
            if (to_remove.empty()) {
                // Defensive: force out the most negative z to guarantee
                // progress.
                std::size_t worst = passive[0];
                double worst_z = z[0];
                for (std::size_t i = 1; i < passive.size(); ++i) {
                    if (z[i] < worst_z) {
                        worst_z = z[i];
                        worst = passive[i];
                    }
                }
                result.x[worst] = 0.0;
                to_remove.push_back(worst);
                in_passive[worst] = false;
            }
            factor.remove_indices(to_remove);
            if (factor.passive().empty()) break;
        }
    };

    // Refresh dual: w = g - (G + shift I) x restricted to passive
    // support.  With a sparse operator behind the Gram this is two
    // sparse mat-vecs (O(nnz)); otherwise a dense row sweep per
    // coordinate (O(n * |passive|)).
    const auto refresh_dual = [&]() {
        if (op != nullptr) {
            const Vector atax =
                op->multiply_transpose(op->multiply(result.x));
            for (std::size_t j = 0; j < n; ++j) {
                w[j] = atb[j] - atax[j] - shift * result.x[j];
            }
            return;
        }
        const std::vector<std::size_t>& passive = factor.passive();
        for (std::size_t j = 0; j < n; ++j) {
            double acc = atb[j];
            for (std::size_t p : passive) {
                acc -= (gram_matrix(j, p) + (j == p ? shift : 0.0)) *
                       result.x[p];
            }
            w[j] = acc;
        }
    };

    if (options.warm_start != nullptr) {
        if (options.warm_start->size() != n) {
            throw std::invalid_argument("nnls_gram: warm start size");
        }
        for (std::size_t j = 0; j < n; ++j) {
            if ((*options.warm_start)[j] > 0.0 && factor.append(j)) {
                in_passive[j] = true;
            }
        }
        if (!factor.passive().empty()) {
            restore_feasibility();
            refresh_dual();
        }
    }

    for (result.iterations = 0; result.iterations < max_iter;
         ++result.iterations) {
        // Most infeasible dual coordinate among active variables.
        std::size_t best = n;
        double best_w = tol;
        for (std::size_t j = 0; j < n; ++j) {
            if (!in_passive[j] && w[j] > best_w) {
                best_w = w[j];
                best = j;
            }
        }
        if (best == n) {
            result.converged = true;
            break;
        }
        if (!factor.append(best)) {
            // Numerically dependent column; treat as converged to avoid
            // cycling on a singular passive set.
            result.converged = true;
            break;
        }
        in_passive[best] = true;

        restore_feasibility();
        refresh_dual();
    }

    if (btb > 0.0) {
        double quad = 0.0;
        for (std::size_t p = 0; p < n; ++p) {
            if (result.x[p] == 0.0) continue;
            double gx = 0.0;
            for (std::size_t q = 0; q < n; ++q) {
                if (result.x[q] != 0.0) {
                    gx += (gram_matrix(p, q) + (p == q ? shift : 0.0)) *
                          result.x[q];
                }
            }
            quad += result.x[p] * (gx - 2.0 * atb[p]);
        }
        result.residual_norm = std::sqrt(std::max(0.0, quad + btb));
    }
    if (options.counters != nullptr) {
        options.counters->nnls_pivots += result.iterations;
    }
    TME_CONTRACT_DBG_CHECK(check::solver_boundary(
        "nnls_gram", result.x, /*require_nonnegative=*/true));
    return result;
}

NnlsResult nnls(const Matrix& a, const Vector& b, const NnlsOptions& options) {
    if (a.rows() != b.size()) {
        throw std::invalid_argument("nnls: dimension mismatch");
    }
    NnlsResult r =
        nnls_gram(gram(a), gemv_transpose(a, b), dot(b, b), options);
    r.residual_norm = nrm2(sub(gemv(a, r.x), b));
    return r;
}

NnlsResult nnls(const SparseMatrix& a, const Vector& b,
                const NnlsOptions& options) {
    if (a.rows() != b.size()) {
        throw std::invalid_argument("nnls: dimension mismatch");
    }
    // The Gram is the operator's own, so the dual refresh can run over
    // A's nonzeros instead of dense Gram rows.
    NnlsOptions sparse_options = options;
    if (sparse_options.gram_operator == nullptr) {
        sparse_options.gram_operator = &a;
    }
    NnlsResult r = nnls_gram(gram_sparse(a), a.multiply_transpose(b),
                             dot(b, b), sparse_options);
    r.residual_norm = nrm2(sub(a.multiply(r.x), b));
    return r;
}

}  // namespace tme::linalg
