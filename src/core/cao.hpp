// Generalized scaling-law moment matching (after Cao et al., JASA 2000).
//
// The paper describes (Section 4.2.2) but does not evaluate Cao's
// extension of Vardi's method, which replaces the Poisson link
// mean = variance with the generalized law Var{s_p} = phi * lambda_p^c.
// We implement it as iteratively reweighted moment matching: at each
// outer iteration the nonlinear variance model is linearized at the
// current iterate,
//
//     var_p  =  phi * lambda_p^c  ~=  (phi * lambda_prev_p^{c-1}) * lambda_p,
//
// turning the second-moment equations back into a linear (NNLS) problem
// of Vardi form with per-demand weights; the fixed point matches both
// moment families under the generalized law.  This is the convex cousin
// of Cao's pseudo-EM for fixed c and completes the paper's "a more
// complete evaluation should include also this method" future-work item.
#pragma once

#include "core/problem.hpp"

namespace tme::core {

struct CaoOptions {
    double phi = 1.0;  ///< scaling coefficient of the variance law
    double c = 2.0;    ///< scaling exponent (c = 1, phi = 1 is Poisson)
    /// Weight on the second-moment equations (as in Vardi).
    double second_moment_weight = 1.0;
    std::size_t outer_iterations = 8;
};

struct CaoResult {
    linalg::Vector lambda;
    std::size_t outer_iterations = 0;
    double iterate_change = 0.0;  ///< ||lambda_k - lambda_{k-1}||_inf last
};

/// Estimates lambda under the generalized mean-variance scaling law.
CaoResult cao_estimate(const SeriesProblem& problem,
                       const CaoOptions& options = {});

}  // namespace tme::core
