// Generated-topology engine smoke test: a 100-PoP backbone (9900 OD
// pairs) replayed through the online engine.  This is the scale the
// sparse fast paths exist for — the test schedules only Gram-free
// methods and asserts the epoch never materializes the ~0.8 GB dense
// Gram, so it stays fast enough for the TSan lane (the engine label
// puts it there).
#include <gtest/gtest.h>

#include <cmath>

#include "engine/engine.hpp"
#include "engine/replay.hpp"
#include "scenario/scenario.hpp"

namespace tme::engine {
namespace {

TEST(GeneratedReplay, HundredPopSmoke) {
    scenario::GeneratedScenarioConfig config;
    config.pops = 100;
    config.avg_core_degree = 4.0;
    config.seed = 1;
    config.samples = 8;  // short day: construction stays cheap under TSan
    const scenario::Scenario sc = scenario::make_generated_scenario(config);
    ASSERT_EQ(sc.topo.pop_count(), 100u);
    ASSERT_EQ(sc.routing.cols(), 9900u);
    ASSERT_EQ(sc.loads.size(), 8u);

    EngineConfig engine_config;
    engine_config.window_size = 4;
    // Gravity only: Gram-free AND cheap enough for the TSan lane.
    // (Kruithof's sparse-aware rewrite now runs at this scale too —
    // bench_perf_solvers phase 5 covers it — but 500 MART sweeps per
    // window under TSan would still dominate this smoke test.)
    engine_config.methods = {Method::gravity};
    OnlineEngine engine(sc.topo, sc.routing, engine_config);

    ReplayOptions options;
    options.attach_truth = true;
    const ReplayResult result = replay_scenario(engine, sc, options);
    ASSERT_EQ(result.windows.size(), sc.loads.size());
    for (const WindowResult& window : result.windows) {
        ASSERT_EQ(window.runs.size(), engine_config.methods.size());
        for (const MethodRun& run : window.runs) {
            ASSERT_EQ(run.estimate.size(), sc.routing.cols());
            for (double v : run.estimate) {
                ASSERT_TRUE(std::isfinite(v));
                ASSERT_GE(v, 0.0);
            }
        }
    }
    // Truth-scored MRE exists and is finite.
    ASSERT_EQ(result.mean_mre.size(), 1u);
    for (const auto& [method, mre] : result.mean_mre) {
        EXPECT_TRUE(std::isfinite(mre)) << method_name(method);
    }
    // Gram-free schedule on a generated backbone: the dense 9900^2 Gram
    // must never have been built.  (Re-acquiring the same content is a
    // cache hit that returns the engine's bound epoch.)
    EXPECT_FALSE(engine.cache()->acquire_shared(sc.routing)->gram_built());
}

}  // namespace
}  // namespace tme::engine
