#include "linalg/entropy_solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "check/contract.hpp"
#include "check/validators.hpp"

namespace tme::linalg {

double generalized_kl(const Vector& s, const Vector& p) {
    if (s.size() != p.size()) {
        throw std::invalid_argument("generalized_kl: size mismatch");
    }
    double acc = 0.0;
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (p[i] <= 0.0) {
            throw std::invalid_argument("generalized_kl: prior must be > 0");
        }
        if (s[i] > 0.0) {
            acc += s[i] * std::log(s[i] / p[i]) - s[i] + p[i];
        } else {
            acc += p[i];
        }
    }
    return acc;
}

namespace {

/// ||A s - b||^2 + w D(s||p) evaluated from a precomputed product
/// as = A s.  The residual squares accumulate in row order, exactly as
/// the historical sub-then-dot evaluation did, so objective values (and
/// therefore every Armijo accept/reject decision) are bit-for-bit the
/// pre-rewrite solver's.
double objective_at(const Vector& as, const Vector& b, const Vector& prior,
                    double w, const Vector& s) {
    double quad = 0.0;
    for (std::size_t i = 0; i < as.size(); ++i) {
        const double ri = as[i] - b[i];
        quad += ri * ri;
    }
    return quad + (w > 0.0 ? w * generalized_kl(s, prior) : 0.0);
}

}  // namespace

EntropySolverResult kl_regularized_ls(const SparseMatrix& a, const Vector& b,
                                      const Vector& prior, double w,
                                      const EntropySolverOptions& options) {
    const std::size_t n = a.cols();
    if (b.size() != a.rows() || prior.size() != n) {
        throw std::invalid_argument("kl_regularized_ls: dimension mismatch");
    }
    if (w < 0.0) {
        throw std::invalid_argument("kl_regularized_ls: w must be >= 0");
    }
    TME_CONTRACT_DBG_CHECK(
        check::solver_boundary("kl_regularized_ls", a.view(), b));
    TME_CONTRACT_DBG_CHECK(
        check::finite(prior, "kl_regularized_ls prior"));

    // Clamp the prior away from zero so log(s/p) stays finite.
    Vector p = prior;
    double pmean = 0.0;
    for (double v : p) pmean += std::max(v, 0.0);
    pmean = (pmean > 0.0 ? pmean / static_cast<double>(n) : 1.0);
    const double floor = options.prior_floor * pmean;
    for (double& v : p) v = std::max(v, floor);

    EntropySolverResult result;
    if (options.initial != nullptr) {
        if (options.initial->size() != n) {
            throw std::invalid_argument("kl_regularized_ls: initial size");
        }
        result.s = *options.initial;
        for (double& v : result.s) {
            v = (std::isfinite(v) && v > floor) ? v : floor;
        }
    } else {
        result.s = p;  // start at the prior (strictly positive)
    }

    // Scale for the stationarity test.
    double bscale = nrm_inf(b);
    if (bscale == 0.0) bscale = 1.0;
    const double grad_scale = std::max(1.0, bscale * bscale);

    // Operator-form data term: the only contact with A is A x and A' x
    // over its nonzeros — A'A is never formed and nothing quadratic in
    // the variable count is ever allocated.  All work vectors live
    // outside the loop, and the product A s is carried across accepted
    // steps (the accepted trial's A*trial IS the next iteration's A s,
    // bit-for-bit), so a full iteration costs one transpose product for
    // the gradient plus one forward product per backtracking probe —
    // the forward re-multiply per iteration the historical loop paid is
    // gone.
    Vector as;  // A * result.s, maintained across iterations
    a.multiply_into(result.s, as);
    Vector resid(a.rows(), 0.0);
    Vector grad(n, 0.0);
    Vector trial(n, 0.0);
    Vector atrial;  // A * trial

    double f = objective_at(as, b, p, w, result.s);
    double eta = options.initial_step;
    std::size_t armijo_probes = 0;

    bool budget_tripped = false;
    for (result.iterations = 0; result.iterations < options.max_iterations;
         ++result.iterations) {
        if (options.budget != nullptr && options.budget->exhausted()) {
            // Deadline cut: result.s is the best point visited (every
            // accepted Armijo step lowered the objective).
            budget_tripped = true;
            break;
        }
        // grad F = 2 A'(A s - b) + w log(s ./ p).
        for (std::size_t i = 0; i < resid.size(); ++i) {
            resid[i] = as[i] - b[i];
        }
        a.multiply_transpose_into(resid, grad);
        scale(2.0, grad);
        if (w > 0.0) {
            for (std::size_t i = 0; i < n; ++i) {
                grad[i] += w * std::log(result.s[i] / p[i]);
            }
        }

        // First-order stationarity for the positive-orthant problem with
        // multiplicative iterates: |s_i * grad_i| must vanish.
        double stat = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            stat = std::max(stat, std::abs(result.s[i] * grad[i]));
        }
        if (stat <= options.tolerance * grad_scale) {
            result.converged = true;
            break;
        }

        // Exponentiated-gradient step with Armijo backtracking.  The step
        // is normalized by the largest |s grad| so exp() stays tame.
        const double norm = std::max(stat, 1e-300);
        bool accepted = false;
        for (int bt = 0; bt < 60; ++bt) {
            const double step = eta / norm;
            for (std::size_t i = 0; i < n; ++i) {
                // Clip the exponent to avoid overflow; +-40 changes s by
                // a factor e^40, far beyond any useful single step.
                double ex = -step * result.s[i] * grad[i];
                ex = std::clamp(ex, -40.0, 40.0);
                trial[i] = result.s[i] * std::exp(ex);
            }
            a.multiply_into(trial, atrial);
            const double ft = objective_at(atrial, b, p, w, trial);
            ++armijo_probes;
            if (ft < f - 1e-12 * std::abs(f)) {
                result.s.swap(trial);
                as.swap(atrial);
                f = ft;
                accepted = true;
                // Allow the step to grow again after a success.
                eta = std::min(eta * 2.0, 1e6);
                break;
            }
            eta *= 0.5;
            if (eta < 1e-18) break;
        }
        if (!accepted) {
            // No descent direction at machine precision: stationary.
            result.converged = true;
            break;
        }
    }
    result.objective = f;
    result.outcome = result.converged  ? SolveOutcome::converged
                     : budget_tripped ? SolveOutcome::budget_exhausted
                                      : SolveOutcome::iteration_capped;
    if (options.counters != nullptr) {
        options.counters->entropy_iterations += result.iterations;
        options.counters->entropy_armijo_probes += armijo_probes;
    }
    TME_CONTRACT_DBG_CHECK(check::solver_boundary(
        "kl_regularized_ls", result.s, /*require_nonnegative=*/true));
    return result;
}

}  // namespace tme::linalg
