#include "traffic/diurnal.hpp"

#include <gtest/gtest.h>

namespace tme::traffic {
namespace {

TEST(Diurnal, PeaksAtPeakMinute) {
    DiurnalProfile p;
    p.peak_minute = 18.0 * 60.0;
    EXPECT_NEAR(diurnal_factor(p, 18.0 * 60.0), 1.0, 1e-12);
}

TEST(Diurnal, TroughOppositePeak) {
    DiurnalProfile p;
    p.peak_minute = 12.0 * 60.0;
    p.trough_fraction = 0.4;
    EXPECT_NEAR(diurnal_factor(p, 0.0), 0.4, 1e-12);
}

TEST(Diurnal, WrapsAroundMidnight) {
    DiurnalProfile p;
    p.peak_minute = 0.0;
    EXPECT_NEAR(diurnal_factor(p, 24.0 * 60.0), 1.0, 1e-12);
    EXPECT_NEAR(diurnal_factor(p, -5.0), diurnal_factor(p, 1435.0), 1e-12);
}

TEST(Diurnal, BoundedBetweenTroughAndOne) {
    DiurnalProfile p;
    p.trough_fraction = 0.35;
    p.sharpness = 2.0;
    for (std::size_t k = 0; k < samples_per_day; ++k) {
        const double f = diurnal_factor(p, sample_minute(k));
        EXPECT_GE(f, p.trough_fraction - 1e-12);
        EXPECT_LE(f, 1.0 + 1e-12);
    }
}

TEST(Diurnal, SharpnessNarrowsBusyPeriod) {
    DiurnalProfile soft;
    soft.sharpness = 1.0;
    DiurnalProfile sharp;
    sharp.sharpness = 4.0;
    // Away from the peak, the sharper profile is lower.
    const double off_peak = 18.0 * 60.0 + 4.0 * 60.0;
    EXPECT_LT(diurnal_factor(sharp, off_peak),
              diurnal_factor(soft, off_peak));
}

TEST(Diurnal, SampleMinuteGrid) {
    EXPECT_DOUBLE_EQ(sample_minute(0), 0.0);
    EXPECT_DOUBLE_EQ(sample_minute(287), 1435.0);
    EXPECT_EQ(samples_per_day, 288u);
}

TEST(Diurnal, SymmetricAroundPeak) {
    DiurnalProfile p;
    p.peak_minute = 600.0;
    EXPECT_NEAR(diurnal_factor(p, 500.0), diurnal_factor(p, 700.0), 1e-12);
}

}  // namespace
}  // namespace tme::traffic
