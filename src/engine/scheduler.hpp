// Estimator scheduler: runs a configurable set of estimation methods
// over the current sliding window on a small thread pool, threading
// warm-start state from one window into the next.
//
// Warm starts are only applied where the optimization problem has a
// unique minimizer independent of the starting point (Bayesian/Vardi
// NNLS active-set seeding, entropy initial iterate, fanout QP
// active-set seeding with KKT verification of the seed), so a warm run
// converges to the same estimate as a cold run — it just gets there in
// far fewer iterations when consecutive windows are similar.  The
// gravity prior is computed once per window and shared by Kruithof,
// entropy and Bayesian, exactly as in the paper's evaluation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/bayesian.hpp"
#include "core/entropy.hpp"
#include "core/fanout.hpp"
#include "core/kruithof.hpp"
#include "core/vardi.hpp"
#include "engine/epoch_cache.hpp"
#include "engine/method.hpp"
#include "engine/thread_pool.hpp"
#include "engine/window.hpp"

namespace tme::engine {

/// Per-method solver options.  The scheduler overrides the reuse hooks
/// (shared_gram, warm_start, window aggregates) per window; everything
/// else is honoured as configured.
struct MethodOptions {
    core::KruithofOptions kruithof;
    core::EntropyOptions entropy;
    core::BayesianOptions bayesian;
    core::VardiOptions vardi;
    core::FanoutOptions fanout;
};

/// One method's output for one window.
struct MethodRun {
    Method method = Method::gravity;
    /// Demand estimate: the newest sample's demands for snapshot
    /// methods, the window mean for series methods (Vardi, fanout).
    linalg::Vector estimate;
    double seconds = 0.0;
    bool warm_started = false;
    /// Whether the warm start survived verification and shaped the
    /// solve (fanout's QP seed can be rejected and fall back to a cold
    /// solve; for the other methods this equals warm_started).
    bool warm_accepted = false;
    /// Mean relative error over large demands vs. ground truth; NaN when
    /// the feed provides no truth.  Filled by the engine.
    double mre = std::numeric_limits<double>::quiet_NaN();
};

/// Everything one window's estimation pass produced.
struct WindowResult {
    std::size_t window_start_sample = 0;
    std::size_t window_end_sample = 0;
    std::size_t window_size = 0;
    std::uint64_t epoch_fingerprint = 0;
    double seconds = 0.0;  ///< wall time for the whole pass
    std::vector<MethodRun> runs;

    /// The run for `method`, or nullptr if it did not run this window.
    const MethodRun* find(Method method) const;
};

class EstimatorScheduler {
  public:
    EstimatorScheduler(std::vector<Method> methods, MethodOptions options,
                       std::size_t threads, bool warm_start,
                       std::size_t min_series_window);

    /// Runs every scheduled method over the window.  Series methods are
    /// skipped while the window holds fewer than min_series_window
    /// samples.  Throws if an estimator throws.
    WindowResult run(const SlidingWindow& window, const RoutingEpoch& epoch);

    /// Drops all warm-start state (routing-epoch change: the previous
    /// window's estimates are no longer valid starting points).
    void reset_warm_state();

    const std::vector<Method>& methods() const { return methods_; }
    bool warm_start_enabled() const { return warm_start_; }

  private:
    struct WarmSlot {
        /// Previous window's solution in the solver's own variable
        /// space: the demand estimate for entropy/Bayesian/Vardi, the
        /// *fanout vector* (QP primal) for the fanout method.
        linalg::Vector estimate;
        bool valid = false;
    };
    WarmSlot& slot(Method m) { return warm_[static_cast<std::size_t>(m)]; }

    std::vector<Method> methods_;
    MethodOptions options_;
    bool warm_start_;
    std::size_t min_series_window_;
    std::vector<WarmSlot> warm_;
    ThreadPool pool_;
};

}  // namespace tme::engine
