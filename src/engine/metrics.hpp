// Engine observability: per-window latency, routing-epoch cache
// statistics, gap bookkeeping, and estimation error against ground
// truth when the feeding scenario provides it.
//
// All counters are relaxed atomics wrapped so the structs stay
// copyable snapshot types: a fleet driver or progress reporter may poll
// an engine's metrics while its worker threads are still updating them,
// and must never observe a torn value.  The per-method map is
// pre-populated by the engine at construction (one entry per scheduled
// method), so its structure never changes while workers update the
// atomic fields inside — concurrent iteration is safe.
//
// Latency is tracked two ways per method: the legacy mean/last fields
// (cheap, used by summary lines and existing tests) and an HDR-style
// obs::LatencyHistogram giving p50/p95/p99/max.  Solver iteration
// totals (QP active-set rounds, CG iterations, entropy Armijo probes,
// MART sweeps, NNLS pivots) accumulate per method in SolverCounterCells.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "engine/method.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "obs/metric_cell.hpp"

namespace tme::engine {

/// Relaxed atomic cell that copies by value (see obs/metric_cell.hpp).
/// Re-exported here because engine code predates src/obs/.
using obs::MetricCell;

struct MethodStats {
    MetricCell<std::size_t> runs;
    MetricCell<std::size_t> warm_runs;
    /// Runs whose warm-start seed survived verification (the fanout
    /// QP can reject an inconsistent seed and fall back to a cold
    /// solve; for the other methods this tracks warm_runs).
    MetricCell<std::size_t> warm_accepted_runs;
    MetricCell<double> total_seconds{0.0};
    MetricCell<double> last_seconds{0.0};
    /// Worst-case run latency (monotone fetch_max — survives where
    /// last_seconds is overwritten every window).
    MetricCell<double> max_seconds{0.0};
    MetricCell<double> last_mre{std::numeric_limits<double>::quiet_NaN()};
    MetricCell<double> mre_sum{0.0};
    MetricCell<std::size_t> mre_count;
    /// Full latency distribution (p50/p95/p99 via latency.snapshot()).
    obs::LatencyHistogram latency;
    /// Solver iteration totals attributed to this method's runs.
    obs::SolverCounterCells solver;
    /// Graceful-degradation tallies (engine/method.hpp quality levels):
    /// degraded = budget-cut or fallback-served windows, stale =
    /// last-good carry-forwards, failed = all-zero placeholder windows.
    /// fallback_runs counts the degraded subset served by another
    /// method.  All zero on a healthy stream.
    MetricCell<std::size_t> degraded_runs;
    MetricCell<std::size_t> stale_runs;
    MetricCell<std::size_t> failed_runs;
    MetricCell<std::size_t> fallback_runs;
    /// Runs whose own solve was cut by the SolveBudget deadline.
    MetricCell<std::size_t> budget_exhausted_runs;

    double mean_seconds() const {
        const std::size_t n = runs.load();
        return n > 0 ? total_seconds.load() / static_cast<double>(n) : 0.0;
    }
    double mean_mre() const {
        const std::size_t n = mre_count.load();
        return n > 0 ? mre_sum.load() / static_cast<double>(n)
                     : std::numeric_limits<double>::quiet_NaN();
    }
};

/// One degradation event: which window, which method, what quality the
/// served estimate ended up with, and why.  Produced by the engines
/// from MethodRun quality flags at metrics-update time (single writer),
/// stored in the bounded DegradationLog below.
struct DegradationRecord {
    std::size_t window_end_sample = 0;
    Method method = Method::gravity;
    EstimateQuality quality = EstimateQuality::degraded;
    /// The method that actually produced the served estimate (equals
    /// `method` unless a fallback ran).
    Method fallback_method = Method::gravity;
    bool used_fallback = false;
    std::size_t stale_age = 0;  ///< windows old, for quality == stale
    std::string reason;
};

/// Bounded, internally-synchronized log of degradation events.  Push
/// happens from the engines' (serialized) metrics-update points;
/// snapshot/copy may race with pushes (the metrics-stress readers copy
/// EngineMetrics mid-stream), hence the mutex.  Once kCapacity records
/// are held further pushes only bump dropped() — the counters above
/// stay exact, only per-event detail is shed.
class DegradationLog {
  public:
    static constexpr std::size_t kCapacity = 256;

    DegradationLog() = default;
    DegradationLog(const DegradationLog& other) {
        std::lock_guard<std::mutex> lock(other.mutex_);
        records_ = other.records_;
        dropped_ = other.dropped_;
    }
    DegradationLog& operator=(const DegradationLog& other) {
        if (this == &other) return *this;
        std::vector<DegradationRecord> copy;
        std::size_t dropped = 0;
        {
            std::lock_guard<std::mutex> lock(other.mutex_);
            copy = other.records_;
            dropped = other.dropped_;
        }
        std::lock_guard<std::mutex> lock(mutex_);
        records_ = std::move(copy);
        dropped_ = dropped;
        return *this;
    }

    void push(DegradationRecord record) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (records_.size() < kCapacity) {
            records_.push_back(std::move(record));
        } else {
            ++dropped_;
        }
    }
    std::vector<DegradationRecord> snapshot() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return records_;
    }
    std::size_t size() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return records_.size();
    }
    std::size_t dropped() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return dropped_;
    }

  private:
    mutable std::mutex mutex_;
    std::vector<DegradationRecord> records_;
    std::size_t dropped_ = 0;
};

struct EngineMetrics {
    MetricCell<std::size_t> samples_ingested;
    MetricCell<std::size_t> gap_samples;   ///< samples flagged as interpolated
    MetricCell<std::size_t> windows_run;
    MetricCell<std::size_t> window_flushes;  ///< windows dropped on epoch change
    MetricCell<std::size_t> epoch_changes;   ///< routing fingerprint transitions
    /// Epoch-cache statistics.  NOTE: these snapshot the engine's
    /// cache, which under a fleet is the SHARED cache — they are then
    /// fleet-wide totals, not this engine's share (FleetReport carries
    /// the authoritative shared numbers once).
    MetricCell<std::size_t> cache_hits;
    MetricCell<std::size_t> cache_misses;
    MetricCell<std::size_t> cache_evictions;
    /// Fingerprint hits rejected by the structural-identity check.
    MetricCell<std::size_t> cache_collisions;
    /// Method runs skipped by MRE scoring because the truth reference
    /// carried no traffic at all (all-quiet window).
    MetricCell<std::size_t> mre_skipped_runs;
    /// Engine-wide degradation tallies (sums of the per-method ones).
    MetricCell<std::size_t> degraded_runs;
    MetricCell<std::size_t> stale_runs;
    MetricCell<std::size_t> failed_runs;
    MetricCell<std::size_t> budget_exhausted_runs;
    /// Samples whose loads arrived non-finite or negative and were
    /// repaired (zeroed + flagged as a gap) by the ingest sanitizer.
    MetricCell<std::size_t> corrupt_samples;
    /// Routing-inconsistency events (injected or detected): the window
    /// is flushed, as on an epoch change.
    MetricCell<std::size_t> routing_faults;
    /// Bounded per-event detail for the tallies above.
    DegradationLog degradation;
    MetricCell<double> total_seconds{0.0};  ///< scheduler time across windows
    MetricCell<double> last_window_seconds{0.0};
    /// End-to-end window latency distribution (same samples that feed
    /// total_seconds / last_window_seconds).
    obs::LatencyHistogram window_latency;
    /// Consumer-side waits popping the bounded ingest queue during
    /// async replay (time the engine sat starved for samples).
    obs::LatencyHistogram ingest_wait;
    /// Producer-side stalls: pipeline submit() blocked at depth, and
    /// ingest-queue push() blocked on a full queue.
    obs::LatencyHistogram backpressure_wait;
    /// Routing-epoch derived-data build times (gram, vardi gram,
    /// fanout constraints, reduced factor) observed via this engine's
    /// cache — shared-cache caveat above applies.
    obs::LatencyHistogram epoch_build_latency;
    /// Pre-populated by the engine for every scheduled method; the map
    /// structure is immutable afterwards (only the atomic fields move).
    std::map<Method, MethodStats> methods;

    double cache_hit_rate() const {
        const std::size_t h = cache_hits.load();
        const std::size_t total = h + cache_misses.load();
        return total > 0
                   ? static_cast<double>(h) / static_cast<double>(total)
                   : 0.0;
    }

    /// Multi-line human-readable dump.
    std::string summary() const;

    /// Structured export mirroring summary(): engine-level counters,
    /// latency histograms, and a per-method object with runs/latency
    /// percentiles/solver iteration counters.
    obs::Json to_json() const;
};

struct MethodRun;  // scheduler.hpp

/// Folds one run's quality flags into the per-method and engine-wide
/// degradation counters, appending a DegradationRecord for every
/// non-exact run.  Call from the engines' single-writer metrics-update
/// points (serial ingest loop, pipeline finalize).
void record_run_quality(EngineMetrics& metrics, const MethodRun& run,
                        std::size_t window_end_sample);

}  // namespace tme::engine
