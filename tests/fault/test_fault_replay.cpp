// Acceptance replay for the robustness stack: a seeded fault schedule
// (solver stall + NaN measurement in one job, a crash-looping
// allocation failure in another) driven through a FleetDriver must
//   * leave every healthy job bitwise identical to a fault-free run,
//   * quarantine exactly the poisoned job after bounded retries,
//   * flag the wobbly job's degraded window in EngineMetrics::to_json()
//     and in the served EstimateSnapshot.
// Requires TME_FAULT_INJECTION=ON (the `fault` preset); skips
// otherwise.
#include "engine/fleet.hpp"

#include <gtest/gtest.h>

#include "fault/injection.hpp"
#include "serve/snapshot.hpp"

namespace tme::engine {
namespace {

scenario::Scenario short_scenario(std::size_t samples, unsigned seed = 1) {
    scenario::Scenario sc =
        scenario::make_scenario(scenario::Network::europe, seed);
    if (sc.demands.size() > samples) {
        sc.demands.resize(samples);
        sc.loads.resize(samples);
    }
    return sc;
}

EngineConfig small_config(std::size_t window_size) {
    EngineConfig config;
    config.window_size = window_size;
    config.methods = {Method::gravity, Method::bayesian, Method::vardi,
                      Method::fanout};
    config.threads = 0;
    return config;
}

void expect_bitwise_equal(const FleetJobReport& a, const FleetJobReport& b) {
    ASSERT_EQ(a.window_results.size(), b.window_results.size()) << a.name;
    for (std::size_t k = 0; k < a.window_results.size(); ++k) {
        const WindowResult& wa = a.window_results[k];
        const WindowResult& wb = b.window_results[k];
        ASSERT_EQ(wa.runs.size(), wb.runs.size()) << a.name;
        for (std::size_t m = 0; m < wa.runs.size(); ++m) {
            ASSERT_EQ(wa.runs[m].estimate.size(),
                      wb.runs[m].estimate.size());
            for (std::size_t p = 0; p < wa.runs[m].estimate.size(); ++p) {
                ASSERT_EQ(wa.runs[m].estimate[p], wb.runs[m].estimate[p])
                    << a.name << " window " << k << " method "
                    << method_name(wa.runs[m].method);
            }
            ASSERT_EQ(wa.runs[m].quality, wb.runs[m].quality) << a.name;
        }
    }
}

TEST(FaultReplay, SeededScheduleIsolatesFaultsToTargetedJobs) {
    if (!fault::compiled()) {
        GTEST_SKIP() << "needs TME_FAULT_INJECTION=ON (fault preset)";
    }
    constexpr std::size_t kSamples = 12;
    const scenario::Scenario sc1 = short_scenario(kSamples, 1);
    const scenario::Scenario sc2 = short_scenario(kSamples, 2);

    std::vector<FleetJob> jobs(4);
    jobs[0].name = "clean-a";
    jobs[0].scenario = &sc1;
    jobs[1].name = "clean-b";
    jobs[1].scenario = &sc2;
    jobs[2].name = "wobbly";
    jobs[2].scenario = &sc1;
    jobs[3].name = "poisoned";
    jobs[3].scenario = &sc1;

    FleetConfig config;
    config.engine = small_config(4);
    config.concurrency = 2;
    config.keep_windows = true;
    // Crashes must surface on the worker thread that owns the job's
    // ambient fault scope: drive ingestion synchronously.
    config.async_ingest = false;
    config.pipeline_depth = 1;
    config.max_job_attempts = 3;
    config.retry_backoff_seconds = 0.0;  // retry at once in tests

    // Fault-free reference fleet.
    fault::disarm();
    FleetDriver reference_driver(sc1.topo, config);
    const FleetReport reference = reference_driver.run(jobs);
    ASSERT_EQ(reference.quarantined_jobs, 0u);
    for (const FleetJobReport& job : reference.jobs) {
        ASSERT_TRUE(job.completed) << job.name;
        ASSERT_EQ(job.attempts, 1u) << job.name;
    }

    // Seeded schedule: one wedged solve and one NaN measurement inside
    // "wobbly" (degradation, not failure), and an allocation failure
    // that fires on every ingest attempt of "poisoned" (a crash loop no
    // retry can outlast).
    fault::arm(
        {
            fault::FaultSpec{fault::FaultSite::solver_stall, "wobbly", 0,
                             1},
            fault::FaultSpec{fault::FaultSite::measurement_nan, "wobbly",
                             3, 1},
            fault::FaultSpec{fault::FaultSite::alloc_failure, "poisoned",
                             0, 1000000},
        },
        2026);

    FleetDriver driver(sc1.topo, config);
    const FleetReport report = driver.run(jobs);
    const fault::FaultStats stats = fault::stats();
    fault::disarm();

    ASSERT_EQ(report.jobs.size(), 4u);
    const FleetJobReport& clean_a = report.jobs[0];
    const FleetJobReport& clean_b = report.jobs[1];
    const FleetJobReport& wobbly = report.jobs[2];
    const FleetJobReport& poisoned = report.jobs[3];

    // Healthy jobs: untouched, single attempt, bitwise identical to the
    // fault-free fleet.
    for (const FleetJobReport* job : {&clean_a, &clean_b}) {
        EXPECT_TRUE(job->completed) << job->name;
        EXPECT_FALSE(job->quarantined) << job->name;
        EXPECT_EQ(job->attempts, 1u) << job->name;
        EXPECT_TRUE(job->error.empty()) << job->name;
        EXPECT_EQ(job->windows, kSamples) << job->name;
        EXPECT_EQ(job->metrics.degraded_runs.load(), 0u) << job->name;
        EXPECT_EQ(job->metrics.corrupt_samples.load(), 0u) << job->name;
    }
    expect_bitwise_equal(clean_a, reference.jobs[0]);
    expect_bitwise_equal(clean_b, reference.jobs[1]);

    // Poisoned job: bounded retries, then quarantine — siblings already
    // proved undisturbed above.
    EXPECT_FALSE(poisoned.completed);
    EXPECT_TRUE(poisoned.quarantined);
    EXPECT_EQ(poisoned.attempts, 3u);
    EXPECT_FALSE(poisoned.error.empty());
    EXPECT_EQ(poisoned.windows, 0u);
    EXPECT_EQ(report.quarantined_jobs, 1u);
    EXPECT_EQ(report.total_windows, 3 * kSamples);
    EXPECT_NE(report.summary().find("QUARANTINED"), std::string::npos);
    // One crash per attempt, no more.
    EXPECT_EQ(
        stats.fires[static_cast<std::size_t>(
            fault::FaultSite::alloc_failure)],
        3u);
    EXPECT_EQ(
        stats.fires[static_cast<std::size_t>(fault::FaultSite::solver_stall)],
        1u);
    EXPECT_EQ(
        stats.fires[static_cast<std::size_t>(
            fault::FaultSite::measurement_nan)],
        1u);

    // Wobbly job: completed, but degraded — the stalled solve is
    // flagged budget_exhausted and the injected NaN was repaired by the
    // ingest sanitizer.
    EXPECT_TRUE(wobbly.completed);
    EXPECT_FALSE(wobbly.quarantined);
    EXPECT_EQ(wobbly.windows, kSamples);
    EXPECT_GE(wobbly.metrics.degraded_runs.load(), 1u);
    EXPECT_GE(wobbly.metrics.budget_exhausted_runs.load(), 1u);
    EXPECT_EQ(wobbly.metrics.corrupt_samples.load(), 1u);
    const obs::Json j = wobbly.metrics.to_json();
    const obs::Json* degr = j.find("degradation");
    ASSERT_NE(degr, nullptr);
    EXPECT_GE(degr->find("degraded_runs")->as_int(), 1);
    EXPECT_EQ(degr->find("corrupt_samples")->as_int(), 1);
    ASSERT_FALSE(degr->find("records")->items().empty());

    // The degraded window is flagged all the way into the served
    // snapshot JSON.
    bool found_degraded_snapshot = false;
    for (const WindowResult& window : wobbly.window_results) {
        for (const MethodRun& run : window.runs) {
            if (run.quality == EstimateQuality::exact) continue;
            const serve::EstimateSnapshot snap =
                serve::EstimateSnapshot::from_window(window);
            const serve::MethodEstimate* me = snap.find(run.method);
            ASSERT_NE(me, nullptr);
            EXPECT_NE(me->quality, EstimateQuality::exact);
            const obs::Json snap_json = snap.to_json();
            const obs::Json* methods = snap_json.find("methods");
            ASSERT_NE(methods, nullptr);
            EXPECT_NE(methods->find(method_name(run.method))
                          ->find("quality")
                          ->as_string(),
                      "exact");
            found_degraded_snapshot = true;
        }
        if (found_degraded_snapshot) break;
    }
    EXPECT_TRUE(found_degraded_snapshot);
}

}  // namespace
}  // namespace tme::engine
