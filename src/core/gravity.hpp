// Gravity models (paper Section 4.1).
//
// The simple gravity model predicts
//
//     s_nm = t_e(n) * t_x(m) / sum_m t_x(m)
//
// from edge-link loads alone; equivalently, every source fans its
// entering traffic out proportionally to destination exit shares.  The
// generalized variant zeroes peer-to-peer demand and renormalizes, using
// PoP roles from the topology.
#pragma once

#include "core/problem.hpp"

namespace tme::core {

/// Simple gravity estimate from a load snapshot (uses only edge rows).
linalg::Vector gravity_estimate(const SnapshotProblem& problem);

/// Generalized gravity: demand between two peering PoPs is forced to 0
/// and the remaining entries are scaled so each source's total entering
/// traffic is preserved.
linalg::Vector generalized_gravity_estimate(const SnapshotProblem& problem);

}  // namespace tme::core
