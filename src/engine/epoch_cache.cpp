#include "engine/epoch_cache.hpp"

#include <stdexcept>

#include "core/route_change.hpp"

namespace tme::engine {

RoutingEpochCache::RoutingEpochCache(std::size_t capacity)
    : capacity_(capacity) {
    if (capacity_ == 0) {
        throw std::invalid_argument("RoutingEpochCache: zero capacity");
    }
}

const RoutingEpoch& RoutingEpochCache::acquire(
    const linalg::SparseMatrix& routing) {
    const std::uint64_t fp = core::routing_fingerprint(routing);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->fingerprint == fp) {
            ++hits_;
            it->routing = &routing;
            entries_.splice(entries_.begin(), entries_, it);
            return entries_.front();
        }
    }
    ++misses_;
    RoutingEpoch epoch;
    epoch.fingerprint = fp;
    epoch.routing = &routing;
    epoch.gram = routing.gram();
    entries_.push_front(std::move(epoch));
    while (entries_.size() > capacity_) {
        entries_.pop_back();
        ++evictions_;
    }
    return entries_.front();
}

}  // namespace tme::engine
