// Bayesian / regularized least-squares estimation (paper Section 4.2.3).
//
// With a Gaussian prior s ~ N(s_prior, sigma^2 I) and unit-variance
// measurement noise t = R s + v, the MAP estimate solves (eq. 7)
//
//     minimize  ||R s - t||^2 + sigma^{-2} ||s - s_prior||^2,   s >= 0.
//
// We parameterize by the regularization parameter lambda = sigma^2: small
// lambda pins the estimate to the prior, large lambda trusts the link
// measurements (the regime the paper finds best, Fig. 13).  The problem
// is a stacked NNLS solved in Gram form:  G = R'R + (1/lambda) I,
// g = R't + (1/lambda) s_prior.
#pragma once

#include "core/problem.hpp"
#include "linalg/qp.hpp"

namespace tme::core {

struct BayesianOptions {
    /// Regularization parameter lambda = sigma^2 (> 0).
    double regularization = 1000.0;
    /// Optional precomputed Gram matrix R'R (pairs x pairs).  The online
    /// engine's routing-epoch cache hands this in so repeated windows
    /// under an unchanged routing skip the Gram assembly; it MUST equal
    /// problem.routing->gram().  Not owned.
    const linalg::Matrix* shared_gram = nullptr;
    /// Optional sparse Gram R'R in CSR form (e.g. the epoch cache's
    /// sparse_gram()); MUST equal gram_sparse_csr(*problem.routing).
    /// When set (and shared_gram is not), the MAP system is solved
    /// through the factored QP — G as a CsrView plus the virtual
    /// (1/lambda) I diagonal — so nothing quadratic in the pair count
    /// is allocated.  The system is strictly convex, so the minimizer
    /// is the NNLS path's to solver precision (~1e-9); this is what
    /// lets the Bayesian method run at 200-PoP generated-backbone
    /// scale, where the dense Gram (~12.7 GB) cannot exist.  Not owned.
    const linalg::SparseMatrix* shared_sparse_gram = nullptr;
    /// Gram-free solve: R'R is never materialized, not even in CSR.
    /// Paper-scale problems (pairs within qp.dense_kkt_limit) run the
    /// factored-passive-set NNLS over on-demand Gram columns
    /// (linalg::gram_column) with the O(nnz) dual refresh through the
    /// routing operator — bit-for-bit the dense NNLS path.  Larger
    /// problems switch to the operator QP: the positive prior makes the
    /// MAP solution dense-positive, so an active-set NNLS would pivot
    /// once per pair, while the QP's block pivoting reaches the same
    /// strictly convex minimizer in a handful of rounds with A'A
    /// applied implicitly per CG iteration.  When set, shared_gram and
    /// shared_sparse_gram are ignored.
    bool operator_form = false;
    /// Optional precomputed CSR transpose of the routing matrix; MUST
    /// equal linalg::transpose(*problem.routing).  Only read by the
    /// operator_form path (the engine caches it per routing epoch);
    /// derived on the fly when absent.  Not owned.
    const linalg::SparseMatrix* shared_routing_transpose = nullptr;
    /// Optional warm start for the active-set NNLS (see NnlsOptions).
    /// G + (1/lambda) I is positive definite, so the minimizer is unique
    /// and unchanged by warm starting.  Not owned.
    const linalg::Vector* warm_start = nullptr;
    /// Factored-path tuning (dense-gather limit, projected-CG
    /// tolerance/cap); only read when shared_sparse_gram is set.  The
    /// warm_start member inside is ignored.
    linalg::EqQpNonnegOptions qp;
    /// Optional iteration telemetry sink, forwarded to whichever solver
    /// runs: the factored QP adds active-set rounds / CG iterations,
    /// the dense NNLS path adds pivots.  Overrides qp.counters.  Not
    /// owned; must outlive the call.
    obs::SolverCounters* counters = nullptr;
    /// Optional cooperative deadline, forwarded to whichever solver
    /// runs (overrides qp.budget).  A tripped budget yields the
    /// solver's best feasible iterate; the caller reads
    /// budget->expired() afterwards to learn the solve was cut.  Not
    /// owned; must outlive the call.
    linalg::SolveBudget* budget = nullptr;
};

/// MAP estimate with non-negativity.  `prior` is pair-indexed.
linalg::Vector bayesian_estimate(const SnapshotProblem& problem,
                                 const linalg::Vector& prior,
                                 const BayesianOptions& options = {});

}  // namespace tme::core
