// Fleet driver tour: replay several scenario/config variants of one
// backbone day concurrently, sharing a single routing-epoch cache, and
// read the aggregated fleet report.
//
//   ./fleet_driver [--samples N] [--usa]
//
// Three jobs run over the same day: the default engine configuration,
// a longer estimation window, and a variant with a mid-day reroute
// (which exercises the shared cache with a second routing epoch).
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/route_change.hpp"
#include "engine/fleet.hpp"

int main(int argc, char** argv) {
    using namespace tme;

    std::size_t samples = 96;
    scenario::Network network = scenario::Network::europe;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--samples") && i + 1 < argc) {
            samples = static_cast<std::size_t>(std::atoi(argv[++i]));
        } else if (!std::strcmp(argv[i], "--usa")) {
            network = scenario::Network::usa;
        } else {
            std::printf("usage: %s [--samples N] [--usa]\n", argv[0]);
            return 2;
        }
    }

    scenario::Scenario sc = scenario::make_scenario(network);
    if (samples > 0 && sc.demands.size() > samples) {
        sc.demands.resize(samples);
        sc.loads.resize(samples);
    }
    const linalg::SparseMatrix rerouted =
        core::perturbed_routing(sc.topo, 0.8, 7);

    engine::FleetConfig config;
    config.engine.window_size = 12;
    config.engine.methods = {engine::Method::gravity,
                             engine::Method::bayesian,
                             engine::Method::vardi, engine::Method::fanout};
    config.concurrency = 3;

    std::vector<engine::FleetJob> jobs(3);
    jobs[0].name = "baseline";
    jobs[0].scenario = &sc;
    jobs[1].name = "long-window";
    jobs[1].scenario = &sc;
    jobs[1].engine = config.engine;
    jobs[1].engine->window_size = 24;
    jobs[2].name = "midday-reroute";
    jobs[2].scenario = &sc;
    jobs[2].replay.events = {{sc.demands.size() / 2, &rerouted}};

    engine::FleetDriver driver(sc.topo, config);
    const engine::FleetReport report = driver.run(jobs);

    std::printf("%s day, %zu samples, 3 concurrent jobs\n\n",
                sc.name.c_str(), sc.demands.size());
    std::printf("%s\n", report.summary().c_str());
    for (const engine::FleetJobReport& job : report.jobs) {
        std::printf("%s:\n", job.name.c_str());
        for (const auto& [method, mre] : job.mean_mre) {
            std::printf("  %-9s mean MRE %.4f\n",
                        engine::method_name(method), mre);
        }
    }
    std::printf("\nshared cache: every job reads the same per-epoch Gram "
                "and derived data —\n%zu misses across %zu windows; the "
                "reroute job added its own epoch.\n",
                report.cache_misses, report.total_windows);
    return 0;
}
