// Compressed-sparse-row matrix.
//
// Routing matrices R (links x OD-pairs) are very sparse: a column has one
// nonzero per link on the OD pair's path.  The estimation solvers need
// R*x, R'*x, Gram products R'R, and row/column slicing; all are provided
// here without densifying.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace tme::linalg {

/// One nonzero entry for triplet-based construction.
struct Triplet {
    std::size_t row = 0;
    std::size_t col = 0;
    double value = 0.0;
};

/// Immutable CSR sparse matrix.  Duplicate triplets are summed.
class SparseMatrix {
  public:
    SparseMatrix() = default;

    /// Builds from triplets; entries that sum to exactly zero are kept out.
    SparseMatrix(std::size_t rows, std::size_t cols,
                 std::vector<Triplet> triplets);

    static SparseMatrix from_dense(const Matrix& dense,
                                   double drop_tol = 0.0);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t nonzeros() const { return values_.size(); }

    /// y = A x.
    Vector multiply(const Vector& x) const;

    /// y = A' x.
    Vector multiply_transpose(const Vector& x) const;

    /// Dense Gram matrix G = A' A (cols x cols).
    Matrix gram() const;

    /// Dense copy.
    Matrix to_dense() const;

    /// Entry lookup (O(row nnz)); returns 0 for structural zeros.
    double at(std::size_t i, std::size_t j) const;

    /// Copies row i into a dense vector of length cols().
    Vector row_dense(std::size_t i) const;

    /// New matrix keeping only the given columns (in the given order).
    SparseMatrix select_columns(const std::vector<std::size_t>& cols) const;

    /// New matrix keeping only the given rows (in the given order).
    SparseMatrix select_rows(const std::vector<std::size_t>& rows) const;

    /// Number of nonzeros in column j (O(nnz) scan).
    std::size_t column_nonzeros(std::size_t j) const;

    // Raw CSR access for tight solver loops.
    const std::vector<std::size_t>& row_offsets() const { return offsets_; }
    const std::vector<std::size_t>& column_indices() const { return cols_idx_; }
    const std::vector<double>& values() const { return values_; }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<std::size_t> offsets_;   // rows_+1 entries
    std::vector<std::size_t> cols_idx_;  // column index per nonzero
    std::vector<double> values_;
};

/// Stacks A over B (A.cols() == B.cols()).
SparseMatrix sparse_vstack(const SparseMatrix& a, const SparseMatrix& b);

}  // namespace tme::linalg
