#include "core/fanout.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/qp.hpp"

namespace tme::core {

namespace {

// w_k[p] = te(src(p))[k]: per-pair source totals from the ingress rows.
linalg::Vector pair_source_totals(const topology::Topology& topo,
                                  const linalg::Vector& loads) {
    linalg::Vector w(topo.pair_count(), 0.0);
    for (std::size_t p = 0; p < topo.pair_count(); ++p) {
        const auto [src, dst] = topo.pair_nodes(p);
        (void)dst;
        w[p] = loads[topo.ingress_link(src)];
    }
    return w;
}

}  // namespace

FanoutConstraints FanoutConstraints::build(const topology::Topology& topo) {
    FanoutConstraints c;
    const std::size_t pairs = topo.pair_count();
    const std::size_t nodes = topo.pop_count();
    c.source_of.resize(pairs);
    c.equality = linalg::Matrix(nodes, pairs, 0.0);
    std::vector<linalg::Triplet> trips;
    trips.reserve(pairs);
    for (std::size_t p = 0; p < pairs; ++p) {
        const std::size_t src = topo.pair_nodes(p).first;
        c.source_of[p] = src;
        c.equality(src, p) = 1.0;
        trips.push_back({src, p, 1.0});
    }
    c.equality_sparse = linalg::SparseMatrix(nodes, pairs, std::move(trips));
    c.rhs.assign(nodes, 1.0);
    return c;
}

FanoutResult fanout_estimate(const SeriesProblem& problem,
                             const FanoutOptions& options) {
    problem.validate_with_topology();
    const topology::Topology& topo = *problem.topo;
    const linalg::SparseMatrix& r = *problem.routing;
    const std::size_t pairs = r.cols();
    const std::size_t nodes = topo.pop_count();
    const std::size_t window = problem.loads.size();

    const FanoutWindowAggregates& agg = options.aggregates;
    if (!agg.complete() && !agg.empty()) {
        throw std::invalid_argument(
            "fanout_estimate: window aggregates must be supplied together");
    }
    if (agg.complete() &&
        (agg.source_outer->rows() != nodes ||
         agg.source_outer->cols() != nodes ||
         agg.weighted_rhs->size() != pairs ||
         agg.mean_loads->size() != r.rows())) {
        throw std::invalid_argument(
            "fanout_estimate: aggregate dimension mismatch");
    }

    // g1 is read-only here, so a shared Gram is used in place (no copy).
    linalg::Matrix local_gram;
    if (options.shared_gram != nullptr) {
        if (options.shared_gram->rows() != pairs ||
            options.shared_gram->cols() != pairs) {
            throw std::invalid_argument(
                "fanout_estimate: shared gram dimension mismatch");
        }
    } else {
        local_gram = r.gram();
    }
    const linalg::Matrix& g1 =
        options.shared_gram != nullptr ? *options.shared_gram : local_gram;

    // Equality-constraint structure (per source, fanouts sum to one):
    // shared per routing epoch by the engine, derived locally otherwise.
    FanoutConstraints local_constraints;
    if (options.shared_constraints != nullptr) {
        if (options.shared_constraints->source_of.size() != pairs ||
            options.shared_constraints->equality.rows() != nodes ||
            options.shared_constraints->equality.cols() != pairs ||
            options.shared_constraints->equality_sparse.rows() != nodes ||
            options.shared_constraints->equality_sparse.cols() != pairs) {
            throw std::invalid_argument(
                "fanout_estimate: shared constraints dimension mismatch");
        }
    } else {
        local_constraints = FanoutConstraints::build(topo);
    }
    const FanoutConstraints& constraints =
        options.shared_constraints != nullptr ? *options.shared_constraints
                                              : local_constraints;

    // Accumulate H = sum_k W_k G1 W_k (elementwise weighting of the Gram
    // matrix) and f = sum_k W_k R' t[k].
    linalg::Matrix h(pairs, pairs, 0.0);
    linalg::Vector f(pairs, 0.0);
    if (agg.complete()) {
        // The weighting sum_k w_k[p] w_k[q] only depends on the source
        // nodes of p and q, so the nodes x nodes aggregate lifts to pair
        // space in a single O(P^2) pass.
        const std::vector<std::size_t>& source_of = constraints.source_of;
        for (std::size_t p = 0; p < pairs; ++p) {
            const std::size_t np = source_of[p];
            for (std::size_t q = 0; q < pairs; ++q) {
                if (g1(p, q) != 0.0) {
                    h(p, q) =
                        (*agg.source_outer)(np, source_of[q]) * g1(p, q);
                }
            }
        }
        f = *agg.weighted_rhs;
    } else {
        // sum_k w_k[p] w_k[q] accumulated in h first, then scaled by G1.
        for (std::size_t k = 0; k < window; ++k) {
            const linalg::Vector w =
                pair_source_totals(topo, problem.loads[k]);
            const linalg::Vector rt = r.multiply_transpose(problem.loads[k]);
            for (std::size_t p = 0; p < pairs; ++p) {
                f[p] += w[p] * rt[p];
                if (w[p] == 0.0) continue;
                for (std::size_t q = 0; q < pairs; ++q) {
                    if (g1(p, q) != 0.0) h(p, q) += w[p] * w[q] * g1(p, q);
                }
            }
        }
    }

    // Weak gravity-fanout tie-break (see FanoutOptions): alpha_gravity
    // for pair (n, m) is the destination's share of mean exit traffic.
    if (options.gravity_tiebreak_weight > 0.0) {
        linalg::Vector mean_loads(r.rows(), 0.0);
        if (agg.complete()) {
            mean_loads = *agg.mean_loads;
        } else {
            for (const linalg::Vector& t : problem.loads) {
                linalg::axpy(1.0, t, mean_loads);
            }
            linalg::scale(1.0 / static_cast<double>(window), mean_loads);
        }
        double total_exit = 0.0;
        for (std::size_t m = 0; m < nodes; ++m) {
            total_exit += mean_loads[topo.egress_link(m)];
        }
        double hmax = 0.0;
        for (std::size_t p = 0; p < pairs; ++p) {
            hmax = std::max(hmax, h(p, p));
        }
        const double eps =
            options.gravity_tiebreak_weight * std::max(hmax, 1e-300);
        for (std::size_t p = 0; p < pairs; ++p) {
            const auto [src, dst] = topo.pair_nodes(p);
            (void)src;
            const double alpha_gravity =
                total_exit > 0.0
                    ? mean_loads[topo.egress_link(dst)] / total_exit
                    : 0.0;
            h(p, p) += eps;
            f[p] += eps * alpha_gravity;
        }
    }

    linalg::EqQpNonnegOptions qp_options;
    qp_options.equality_operator = &constraints.equality_sparse;
    if (options.warm_start != nullptr) {
        if (options.warm_start->size() != pairs) {
            throw std::invalid_argument(
                "fanout_estimate: warm start size mismatch");
        }
        qp_options.warm_start = options.warm_start;
    }
    const linalg::EqQpNonnegResult qp = linalg::solve_eq_qp_nonneg(
        h, f, constraints.equality, constraints.rhs, qp_options);

    FanoutResult result;
    result.fanouts = qp.x;
    result.equality_violation = qp.equality_violation;
    result.qp_iterations = qp.iterations;
    result.warm_accepted = qp.warm_accepted;

    // Window-averaged demand estimate.  w_k is linear in the loads, so
    // the mean over samples equals the value at the mean loads.
    result.mean_demands.assign(pairs, 0.0);
    if (agg.complete()) {
        const linalg::Vector mean_w =
            pair_source_totals(topo, *agg.mean_loads);
        for (std::size_t p = 0; p < pairs; ++p) {
            result.mean_demands[p] = result.fanouts[p] * mean_w[p];
        }
    } else {
        for (std::size_t k = 0; k < window; ++k) {
            const linalg::Vector w =
                pair_source_totals(topo, problem.loads[k]);
            for (std::size_t p = 0; p < pairs; ++p) {
                result.mean_demands[p] += result.fanouts[p] * w[p];
            }
        }
        for (double& v : result.mean_demands) {
            v /= static_cast<double>(window);
        }
    }
    return result;
}

linalg::Vector demands_from_fanout_snapshot(const SnapshotProblem& problem,
                                            const linalg::Vector& fanouts) {
    problem.validate_with_topology();
    if (fanouts.size() != problem.topo->pair_count()) {
        throw std::invalid_argument(
            "demands_from_fanout_snapshot: fanout size mismatch");
    }
    const linalg::Vector w = pair_source_totals(*problem.topo,
                                                problem.loads);
    return linalg::hadamard(fanouts, w);
}

}  // namespace tme::core
