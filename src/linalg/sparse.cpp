#include "linalg/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace tme::linalg {

SparseMatrix::SparseMatrix(std::size_t rows, std::size_t cols,
                           std::vector<Triplet> triplets)
    : rows_(rows), cols_(cols) {
    for (const Triplet& t : triplets) {
        if (t.row >= rows || t.col >= cols) {
            throw std::invalid_argument("SparseMatrix: triplet out of range");
        }
    }
    std::sort(triplets.begin(), triplets.end(),
              [](const Triplet& a, const Triplet& b) {
                  return a.row != b.row ? a.row < b.row : a.col < b.col;
              });
    offsets_.assign(rows_ + 1, 0);
    cols_idx_.reserve(triplets.size());
    values_.reserve(triplets.size());
    std::size_t i = 0;
    while (i < triplets.size()) {
        // Sum duplicates.
        std::size_t j = i;
        double v = 0.0;
        while (j < triplets.size() && triplets[j].row == triplets[i].row &&
               triplets[j].col == triplets[i].col) {
            v += triplets[j].value;
            ++j;
        }
        if (v != 0.0) {
            cols_idx_.push_back(triplets[i].col);
            values_.push_back(v);
            ++offsets_[triplets[i].row + 1];
        }
        i = j;
    }
    for (std::size_t r = 0; r < rows_; ++r) offsets_[r + 1] += offsets_[r];
}

SparseMatrix SparseMatrix::from_csr(std::size_t rows, std::size_t cols,
                                    std::vector<std::size_t> offsets,
                                    std::vector<std::size_t> col_indices,
                                    std::vector<double> values) {
    if (offsets.size() != rows + 1 || offsets.front() != 0 ||
        offsets.back() != col_indices.size() ||
        col_indices.size() != values.size()) {
        throw std::invalid_argument("SparseMatrix::from_csr: bad shape");
    }
    for (std::size_t i = 0; i < rows; ++i) {
        if (offsets[i] > offsets[i + 1]) {
            throw std::invalid_argument(
                "SparseMatrix::from_csr: offsets not monotone");
        }
        for (std::size_t k = offsets[i]; k < offsets[i + 1]; ++k) {
            if (col_indices[k] >= cols ||
                (k > offsets[i] && col_indices[k - 1] >= col_indices[k])) {
                throw std::invalid_argument(
                    "SparseMatrix::from_csr: columns not sorted unique in "
                    "range");
            }
        }
    }
    SparseMatrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.offsets_ = std::move(offsets);
    m.cols_idx_ = std::move(col_indices);
    m.values_ = std::move(values);
    return m;
}

SparseMatrix SparseMatrix::from_dense(const Matrix& dense, double drop_tol) {
    std::vector<Triplet> trips;
    for (std::size_t i = 0; i < dense.rows(); ++i) {
        for (std::size_t j = 0; j < dense.cols(); ++j) {
            const double v = dense(i, j);
            if (std::abs(v) > drop_tol) trips.push_back({i, j, v});
        }
    }
    return SparseMatrix(dense.rows(), dense.cols(), std::move(trips));
}

Vector SparseMatrix::multiply(const Vector& x) const {
    Vector y;
    multiply_into(x, y);
    return y;
}

void SparseMatrix::multiply_into(const Vector& x, Vector& y) const {
    if (x.size() != cols_) {
        throw std::invalid_argument("SparseMatrix::multiply: size mismatch");
    }
    y.assign(rows_, 0.0);
    const std::size_t* __restrict off = offsets_.data();
    const std::size_t* __restrict cidx = cols_idx_.data();
    const double* __restrict vals = values_.data();
    const double* __restrict xp = x.data();
    double* __restrict yp = y.data();
    for (std::size_t i = 0; i < rows_; ++i) {
        double acc = 0.0;
        for (std::size_t k = off[i]; k < off[i + 1]; ++k) {
            acc += vals[k] * xp[cidx[k]];
        }
        yp[i] = acc;
    }
}

Vector SparseMatrix::multiply_transpose(const Vector& x) const {
    Vector y;
    multiply_transpose_into(x, y);
    return y;
}

void SparseMatrix::multiply_transpose_into(const Vector& x,
                                           Vector& y) const {
    if (x.size() != rows_) {
        throw std::invalid_argument(
            "SparseMatrix::multiply_transpose: size mismatch");
    }
    y.assign(cols_, 0.0);
    const std::size_t* __restrict off = offsets_.data();
    const std::size_t* __restrict cidx = cols_idx_.data();
    const double* __restrict vals = values_.data();
    double* __restrict yp = y.data();
    for (std::size_t i = 0; i < rows_; ++i) {
        const double xi = x[i];
        if (xi == 0.0) continue;
        for (std::size_t k = off[i]; k < off[i + 1]; ++k) {
            yp[cidx[k]] += xi * vals[k];
        }
    }
}

Matrix SparseMatrix::gram() const { return gram_sparse(*this); }

namespace {

/// CSC-style column supports of a CSR matrix: for each column p, the
/// CSR positions of its nonzeros (source rows ascending — a
/// column-counting pass over the row-sorted CSR arrays yields them in
/// that order) plus the bounds of the row each nonzero lives in.  The
/// shared indexing pass of both Gram kernels.
struct ColumnSupports {
    std::vector<std::size_t> col_start;  // cols + 1 entries
    std::vector<std::size_t> entry_pos;
    std::vector<std::size_t> entry_row_start;
    std::vector<std::size_t> entry_row_end;
};

ColumnSupports column_supports(const CsrView& v, std::size_t nnz) {
    ColumnSupports cs;
    cs.col_start.assign(v.cols + 1, 0);
    for (std::size_t k = 0; k < nnz; ++k) {
        ++cs.col_start[v.col_index[k] + 1];
    }
    for (std::size_t p = 0; p < v.cols; ++p) {
        cs.col_start[p + 1] += cs.col_start[p];
    }
    cs.entry_pos.resize(nnz);
    cs.entry_row_start.resize(nnz);
    cs.entry_row_end.resize(nnz);
    std::vector<std::size_t> fill(cs.col_start.begin(),
                                  cs.col_start.end() - 1);
    for (std::size_t i = 0; i < v.rows; ++i) {
        const std::size_t row_start = v.offsets[i];
        const std::size_t row_end = v.offsets[i + 1];
        for (std::size_t k = row_start; k < row_end; ++k) {
            const std::size_t slot = fill[v.col_index[k]]++;
            cs.entry_pos[slot] = k;
            cs.entry_row_start[slot] = row_start;
            cs.entry_row_end[slot] = row_end;
        }
    }
    return cs;
}

}  // namespace

Matrix gram_sparse(const SparseMatrix& a) {
    const CsrView v = a.view();
    Matrix g(v.cols, v.cols, 0.0);

    // CSC-ordered accumulation: for each output row p, visit the source
    // rows carrying column p (ascending) and fold in each carrying
    // row's full span.  Every G(p, q) element thereby accumulates its
    // terms in source-row-ascending order — bitwise what the naive
    // row-outer upper-triangle sweep plus a mirror copy produces
    // (products commute, so the lower entries match their mirrored
    // twins exactly) — but with two locality wins: all updates to G
    // row p happen back to back, and structurally-zero regions of the
    // (potentially huge) output are never touched at all, so their
    // calloc-backed pages stay unfaulted.
    const ColumnSupports cs = column_supports(v, a.nonzeros());
    const std::size_t* __restrict qi = v.col_index;
    const double* __restrict qv = v.values;
    for (std::size_t p = 0; p < v.cols; ++p) {
        double* __restrict grow = g.row_data(p);
        for (std::size_t slot = cs.col_start[p]; slot < cs.col_start[p + 1];
             ++slot) {
            const double vp = qv[cs.entry_pos[slot]];
            const std::size_t row_end = cs.entry_row_end[slot];
            for (std::size_t l = cs.entry_row_start[slot]; l < row_end;
                 ++l) {
                grow[qi[l]] += vp * qv[l];
            }
        }
    }
    return g;
}

Matrix SparseMatrix::to_dense() const {
    Matrix d(rows_, cols_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = offsets_[i]; k < offsets_[i + 1]; ++k) {
            d(i, cols_idx_[k]) = values_[k];
        }
    }
    return d;
}

double SparseMatrix::at(std::size_t i, std::size_t j) const {
    if (i >= rows_ || j >= cols_) {
        throw std::out_of_range("SparseMatrix::at: index out of range");
    }
    for (std::size_t k = offsets_[i]; k < offsets_[i + 1]; ++k) {
        if (cols_idx_[k] == j) return values_[k];
    }
    return 0.0;
}

Vector SparseMatrix::row_dense(std::size_t i) const {
    if (i >= rows_) {
        throw std::out_of_range("SparseMatrix::row_dense: index out of range");
    }
    Vector r(cols_, 0.0);
    for (std::size_t k = offsets_[i]; k < offsets_[i + 1]; ++k) {
        r[cols_idx_[k]] = values_[k];
    }
    return r;
}

SparseMatrix SparseMatrix::select_columns(
    const std::vector<std::size_t>& cols) const {
    std::vector<std::size_t> new_index(cols_, SIZE_MAX);
    for (std::size_t j = 0; j < cols.size(); ++j) {
        if (cols[j] >= cols_) {
            throw std::out_of_range("select_columns: index out of range");
        }
        new_index[cols[j]] = j;
    }
    std::vector<Triplet> trips;
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = offsets_[i]; k < offsets_[i + 1]; ++k) {
            const std::size_t nj = new_index[cols_idx_[k]];
            if (nj != SIZE_MAX) trips.push_back({i, nj, values_[k]});
        }
    }
    return SparseMatrix(rows_, cols.size(), std::move(trips));
}

SparseMatrix SparseMatrix::select_rows(
    const std::vector<std::size_t>& rows) const {
    std::vector<Triplet> trips;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const std::size_t r = rows[i];
        if (r >= rows_) {
            throw std::out_of_range("select_rows: index out of range");
        }
        for (std::size_t k = offsets_[r]; k < offsets_[r + 1]; ++k) {
            trips.push_back({i, cols_idx_[k], values_[k]});
        }
    }
    return SparseMatrix(rows.size(), cols_, std::move(trips));
}

std::size_t SparseMatrix::column_nonzeros(std::size_t j) const {
    std::size_t count = 0;
    for (std::size_t c : cols_idx_) {
        if (c == j) ++count;
    }
    return count;
}

SparseMatrix gram_sparse_csr(const SparseMatrix& a) {
    const CsrView v = a.view();
    const std::size_t n = v.cols;
    const std::size_t nnz = a.nonzeros();
    const ColumnSupports cs = column_supports(v, nnz);

    // Gustavson: scatter each output row into a dense scratch that
    // stays cache-resident, then harvest it in column order (so the
    // produced CSR rows are sorted without any per-row sort).  Bounds
    // tracked per row keep the harvest scan to the touched span.
    std::vector<double> scratch(n, 0.0);
    std::vector<std::size_t> offsets(n + 1, 0);
    std::vector<std::size_t> cols_idx;
    std::vector<double> values;
    cols_idx.reserve(4 * nnz);
    values.reserve(4 * nnz);
    const std::size_t* __restrict qi = v.col_index;
    const double* __restrict qv = v.values;
    double* __restrict sc = scratch.data();
    for (std::size_t p = 0; p < n; ++p) {
        std::size_t lo = n;
        std::size_t hi = 0;
        for (std::size_t slot = cs.col_start[p]; slot < cs.col_start[p + 1];
             ++slot) {
            const double vp = qv[cs.entry_pos[slot]];
            const std::size_t row_end = cs.entry_row_end[slot];
            const std::size_t row_start = cs.entry_row_start[slot];
            if (row_start < row_end) {
                lo = std::min(lo, qi[row_start]);
                hi = std::max(hi, qi[row_end - 1] + 1);
            }
            for (std::size_t l = row_start; l < row_end; ++l) {
                sc[qi[l]] += vp * qv[l];
            }
        }
        for (std::size_t q = lo; q < hi; ++q) {
            const double val = sc[q];
            if (val != 0.0) {
                cols_idx.push_back(q);
                values.push_back(val);
                sc[q] = 0.0;
            }
        }
        offsets[p + 1] = cols_idx.size();
    }
    return SparseMatrix::from_csr(n, n, std::move(offsets),
                                  std::move(cols_idx), std::move(values));
}

SparseMatrix transpose(const SparseMatrix& a) {
    const CsrView v = a.view();
    const std::size_t nnz = a.nonzeros();
    std::vector<std::size_t> offsets(v.cols + 1, 0);
    for (std::size_t k = 0; k < nnz; ++k) {
        ++offsets[v.col_index[k] + 1];
    }
    for (std::size_t p = 0; p < v.cols; ++p) offsets[p + 1] += offsets[p];
    std::vector<std::size_t> cols_idx(nnz);
    std::vector<double> values(nnz);
    std::vector<std::size_t> fill(offsets.begin(), offsets.end() - 1);
    for (std::size_t i = 0; i < v.rows; ++i) {
        for (std::size_t k = v.offsets[i]; k < v.offsets[i + 1]; ++k) {
            const std::size_t slot = fill[v.col_index[k]]++;
            cols_idx[slot] = i;
            values[slot] = v.values[k];
        }
    }
    return SparseMatrix::from_csr(v.cols, v.rows, std::move(offsets),
                                  std::move(cols_idx), std::move(values));
}

void gram_column(const CsrView& a, const CsrView& at, std::size_t j,
                 double* scratch, std::vector<std::size_t>& support) {
    support.clear();
    // Row j of A' lists column j's carriers with source rows ascending
    // and the stored values verbatim, so this loop replays the Gram
    // kernels' output-row-j accumulation exactly: fold each carrying
    // row's full span, weighted by the carrier value.
    const std::size_t* __restrict qi = a.col_index;
    const double* __restrict qv = a.values;
    double* __restrict sc = scratch;
    std::size_t lo = a.cols;
    std::size_t hi = 0;
    for (std::size_t t = at.offsets[j]; t < at.offsets[j + 1]; ++t) {
        const double vp = at.values[t];
        const std::size_t l = at.col_index[t];
        const std::size_t row_start = a.offsets[l];
        const std::size_t row_end = a.offsets[l + 1];
        if (row_start < row_end) {
            lo = std::min(lo, qi[row_start]);
            hi = std::max(hi, qi[row_end - 1] + 1);
        }
        for (std::size_t k = row_start; k < row_end; ++k) {
            sc[qi[k]] += vp * qv[k];
        }
    }
    for (std::size_t q = lo; q < hi; ++q) {
        if (sc[q] != 0.0) support.push_back(q);
    }
}

SparseMatrix sparse_vstack(const SparseMatrix& a, const SparseMatrix& b) {
    if (a.cols() != b.cols()) {
        throw std::invalid_argument("sparse_vstack: column count mismatch");
    }
    std::vector<Triplet> trips;
    trips.reserve(a.nonzeros() + b.nonzeros());
    const auto& ao = a.row_offsets();
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t k = ao[i]; k < ao[i + 1]; ++k) {
            trips.push_back({i, a.column_indices()[k], a.values()[k]});
        }
    }
    const auto& bo = b.row_offsets();
    for (std::size_t i = 0; i < b.rows(); ++i) {
        for (std::size_t k = bo[i]; k < bo[i + 1]; ++k) {
            trips.push_back(
                {a.rows() + i, b.column_indices()[k], b.values()[k]});
        }
    }
    return SparseMatrix(a.rows() + b.rows(), a.cols(), std::move(trips));
}

}  // namespace tme::linalg
