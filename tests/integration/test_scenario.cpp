#include "scenario/scenario.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <algorithm>

#include "core/metrics.hpp"
#include "topology/builders.hpp"
#include "linalg/stats.hpp"
#include "routing/routing_matrix.hpp"
#include "traffic/traffic_matrix.hpp"

namespace tme::scenario {
namespace {

class ScenarioTest : public ::testing::TestWithParam<Network> {};

TEST_P(ScenarioTest, DimensionsMatchPaper) {
    const Scenario sc = make_scenario(GetParam());
    if (GetParam() == Network::europe) {
        EXPECT_EQ(sc.topo.pop_count(), 12u);
        EXPECT_EQ(sc.topo.link_count(), 72u);
        EXPECT_EQ(sc.topo.pair_count(), 132u);
    } else {
        EXPECT_EQ(sc.topo.pop_count(), 25u);
        EXPECT_EQ(sc.topo.link_count(), 284u);
        EXPECT_EQ(sc.topo.pair_count(), 600u);
    }
    EXPECT_EQ(sc.demands.size(), 288u);
    EXPECT_EQ(sc.loads.size(), 288u);
}

TEST_P(ScenarioTest, LoadsAreConsistentWithDemands) {
    // Evaluation data set property (paper 5.1.4): t[k] = R s[k] exactly.
    const Scenario sc = make_scenario(GetParam());
    for (std::size_t k = 0; k < sc.demands.size(); k += 37) {
        const linalg::Vector pred = sc.routing.multiply(sc.demands[k]);
        for (std::size_t l = 0; l < pred.size(); ++l) {
            EXPECT_NEAR(pred[l], sc.loads[k][l], 1e-12);
        }
    }
}

TEST_P(ScenarioTest, RoutingMatrixValid) {
    const Scenario sc = make_scenario(GetParam());
    EXPECT_EQ(routing::validate_routing_matrix(sc.topo, sc.routing), "");
}

TEST_P(ScenarioTest, NormalizedTotalPeaksAtOne) {
    const Scenario sc = make_scenario(GetParam());
    double mx = 0.0;
    for (std::size_t k = 0; k < sc.demands.size(); ++k) {
        mx = std::max(mx, sc.total_at(k));
    }
    EXPECT_NEAR(mx, 1.0, 1e-9);
}

TEST_P(ScenarioTest, DiurnalCyclePresent) {
    // Fig. 1: pronounced cycle with trough well below the peak.
    const Scenario sc = make_scenario(GetParam());
    double mn = 1e300;
    for (std::size_t k = 0; k < sc.demands.size(); ++k) {
        mn = std::min(mn, sc.total_at(k));
    }
    EXPECT_LT(mn, 0.55);
    EXPECT_GT(mn, 0.15);
}

TEST_P(ScenarioTest, BusyWindowIsBusy) {
    const Scenario sc = make_scenario(GetParam());
    double busy_avg = 0.0;
    for (std::size_t k = sc.busy_start; k < sc.busy_start + sc.busy_length;
         ++k) {
        busy_avg += sc.total_at(k);
    }
    busy_avg /= static_cast<double>(sc.busy_length);
    double day_avg = 0.0;
    for (std::size_t k = 0; k < sc.demands.size(); ++k) {
        day_avg += sc.total_at(k);
    }
    day_avg /= static_cast<double>(sc.demands.size());
    EXPECT_GT(busy_avg, day_avg);
}

TEST_P(ScenarioTest, ScalingLawHolds) {
    // Fig. 6: strong mean-variance relation over the busy window with
    // exponent near the configured c.
    const Scenario sc = make_scenario(GetParam());
    std::vector<linalg::Vector> window(
        sc.demands.begin() + static_cast<std::ptrdiff_t>(sc.busy_start),
        sc.demands.begin() +
            static_cast<std::ptrdiff_t>(sc.busy_start + sc.busy_length));
    const linalg::Vector mean = linalg::sample_mean(window);
    linalg::Vector var(mean.size());
    for (std::size_t p = 0; p < mean.size(); ++p) {
        linalg::Vector xs(window.size());
        for (std::size_t k = 0; k < window.size(); ++k) xs[k] = window[k][p];
        var[p] = linalg::variance(xs);
    }
    const linalg::ScalingLawFit fit = linalg::fit_scaling_law(mean, var);
    EXPECT_GT(fit.r_squared, 0.9);
    const double expected_c =
        GetParam() == Network::europe ? 1.6 : 1.5;
    EXPECT_NEAR(fit.c, expected_c, 0.35);
}

TEST_P(ScenarioTest, LargeDemandSetSizeNearPaper) {
    const Scenario sc = make_scenario(GetParam());
    const linalg::Vector& truth = sc.busy_snapshot_demands();
    const double thr = core::threshold_for_coverage(truth, 0.9);
    const std::size_t n = core::demands_above(truth, thr).size();
    if (GetParam() == Network::europe) {
        EXPECT_GE(n, 20u);  // paper: 29
        EXPECT_LE(n, 60u);
    } else {
        EXPECT_GE(n, 110u);  // paper: 155
        EXPECT_LE(n, 210u);
    }
}

TEST_P(ScenarioTest, FanoutsMoreStableThanDemands) {
    // Figs. 4-5: for the largest sources, fanout coefficient of
    // variation over the day is much smaller than demand CV.
    const Scenario sc = make_scenario(GetParam());
    const std::size_t nodes = sc.topo.pop_count();
    // Find the largest source by busy mean.
    const linalg::Vector mean = sc.busy_mean_demands();
    const linalg::Vector totals =
        traffic::node_totals_from_demands(nodes, mean);
    std::size_t big_src = 0;
    for (std::size_t n = 1; n < nodes; ++n) {
        if (totals[n] > totals[big_src]) big_src = n;
    }
    // Largest demand from that source.
    std::size_t big_pair = 0;
    double best = -1.0;
    for (std::size_t m = 0; m < nodes; ++m) {
        if (m == big_src) continue;
        const std::size_t p = sc.topo.pair_index(big_src, m);
        if (mean[p] > best) {
            best = mean[p];
            big_pair = p;
        }
    }
    linalg::Vector demand_series;
    linalg::Vector fanout_series;
    for (std::size_t k = 0; k < sc.demands.size(); ++k) {
        const double d = sc.demands[k][big_pair];
        const linalg::Vector tk =
            traffic::node_totals_from_demands(nodes, sc.demands[k]);
        demand_series.push_back(d);
        fanout_series.push_back(tk[big_src] > 0.0 ? d / tk[big_src] : 0.0);
    }
    auto cv = [](const linalg::Vector& xs) {
        return std::sqrt(linalg::variance(xs)) / linalg::mean(xs);
    };
    EXPECT_LT(cv(fanout_series), 0.5 * cv(demand_series));
}

TEST_P(ScenarioTest, DeterministicForFixedSeed) {
    const Scenario a = make_scenario(GetParam(), 5);
    const Scenario b = make_scenario(GetParam(), 5);
    EXPECT_EQ(a.demands[100], b.demands[100]);
    const Scenario c = make_scenario(GetParam(), 6);
    EXPECT_NE(a.demands[100], c.demands[100]);
}

INSTANTIATE_TEST_SUITE_P(Networks, ScenarioTest,
                         ::testing::Values(Network::europe, Network::usa),
                         [](const auto& param_info) {
                             return param_info.param == Network::europe
                                        ? "Europe"
                                        : "USA";
                         });

TEST(CustomScenario, RespectsTopology) {
    CustomScenarioConfig config;
    config.seed = 2;
    const Scenario sc = make_custom_scenario(
        topology::europe_backbone(), config, "custom-eu");
    EXPECT_EQ(sc.name, "custom-eu");
    EXPECT_EQ(sc.topo.pop_count(), 12u);
    EXPECT_EQ(sc.demands.size(), 288u);
}

TEST(Scenario, WindowAccessorsValidate) {
    const Scenario sc = make_scenario(Network::europe);
    EXPECT_THROW(sc.busy_series_window(0), std::invalid_argument);
    EXPECT_THROW(sc.busy_series_window(10000), std::invalid_argument);
    const auto series = sc.busy_series();
    EXPECT_EQ(series.loads.size(), sc.busy_length);
}

}  // namespace
}  // namespace tme::scenario
