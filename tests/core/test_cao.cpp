#include "core/cao.hpp"

#include <gtest/gtest.h>

#include <random>

#include "linalg/stats.hpp"

#include "core/metrics.hpp"
#include "test_helpers.hpp"
#include "traffic/generator.hpp"

namespace tme::core {
namespace {

using testing::SmallNetwork;
using testing::tiny_network;

// Demands with Var = phi * mean^c via the Gamma generator.
SeriesProblem scaled_series(const SmallNetwork& net, double phi, double c,
                            std::size_t samples, unsigned seed) {
    std::mt19937_64 rng(seed);
    std::vector<linalg::Vector> demands;
    demands.reserve(samples);
    for (std::size_t k = 0; k < samples; ++k) {
        linalg::Vector s(net.truth.size());
        for (std::size_t p = 0; p < s.size(); ++p) {
            const double mean = net.truth[p];
            const double var = phi * std::pow(mean, c);
            const double shape = mean * mean / var;
            std::gamma_distribution<double> dist(shape, var / mean);
            s[p] = dist(rng);
        }
        demands.push_back(std::move(s));
    }
    return net.series(demands);
}

TEST(Cao, PoissonSpecialCaseMatchesVardiBehaviour) {
    // phi = 1, c = 1 is exactly the Poisson moment model.
    const SmallNetwork net = tiny_network(2);
    const SeriesProblem series = scaled_series(net, 1.0, 1.0, 600, 3);
    CaoOptions options;
    options.phi = 1.0;
    options.c = 1.0;
    const CaoResult r = cao_estimate(series, options);
    EXPECT_LT(mre_at_coverage(net.truth, r.lambda, 0.95), 0.4);
}

TEST(Cao, RecoversUnderGeneralizedScalingLaw) {
    const SmallNetwork net = tiny_network(6);
    const double phi = 0.5;
    const double c = 1.6;
    const SeriesProblem series = scaled_series(net, phi, c, 800, 4);
    CaoOptions options;
    options.phi = phi;
    options.c = c;
    options.second_moment_weight = 1.0;
    const CaoResult r = cao_estimate(series, options);
    EXPECT_GT(r.outer_iterations, 0u);
    EXPECT_LT(mre_at_coverage(net.truth, r.lambda, 0.95), 0.4);
}

TEST(Cao, ZeroWeightReducesToFirstMoments) {
    const SmallNetwork net = tiny_network();
    const SeriesProblem series = scaled_series(net, 0.5, 1.5, 50, 5);
    CaoOptions options;
    options.second_moment_weight = 0.0;
    const CaoResult r = cao_estimate(series, options);
    EXPECT_EQ(r.outer_iterations, 0u);
    const linalg::Vector mean = linalg::sample_mean(series.loads);
    const linalg::Vector pred = net.routing.multiply(r.lambda);
    for (std::size_t l = 0; l < pred.size(); ++l) {
        EXPECT_NEAR(pred[l], mean[l], 1e-6 * (1.0 + mean[l]));
    }
}

TEST(Cao, IterationConverges) {
    const SmallNetwork net = tiny_network(8);
    const SeriesProblem series = scaled_series(net, 0.8, 1.4, 400, 6);
    CaoOptions options;
    options.phi = 0.8;
    options.c = 1.4;
    options.outer_iterations = 12;
    const CaoResult r = cao_estimate(series, options);
    // The damped fixed point should have settled.
    EXPECT_LT(r.iterate_change,
              0.15 * (1.0 + linalg::nrm_inf(r.lambda)));
}

TEST(Cao, RejectsBadPhi) {
    const SmallNetwork net = tiny_network();
    const SeriesProblem series = scaled_series(net, 1.0, 1.0, 5, 1);
    CaoOptions bad;
    bad.phi = 0.0;
    EXPECT_THROW(cao_estimate(series, bad), std::invalid_argument);
}

}  // namespace
}  // namespace tme::core
