#include "linalg/entropy_solver.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "linalg/matrix.hpp"

namespace tme::linalg {
namespace {

TEST(GeneralizedKl, ZeroAtPrior) {
    EXPECT_NEAR(generalized_kl({1.0, 2.0}, {1.0, 2.0}), 0.0, 1e-14);
}

TEST(GeneralizedKl, PositiveAwayFromPrior) {
    EXPECT_GT(generalized_kl({2.0, 1.0}, {1.0, 2.0}), 0.0);
}

TEST(GeneralizedKl, HandlesZeroEntries) {
    // s_i = 0 contributes p_i.
    EXPECT_NEAR(generalized_kl({0.0}, {1.5}), 1.5, 1e-14);
}

TEST(GeneralizedKl, RejectsNonpositivePrior) {
    EXPECT_THROW(generalized_kl({1.0}, {0.0}), std::invalid_argument);
}

TEST(EntropySolver, NoRegularizationSolvesLeastSquares) {
    // Full-rank consistent system: solution is exact regardless of prior.
    SparseMatrix a = SparseMatrix::from_dense(Matrix{{1.0, 0.0},
                                                     {0.0, 1.0},
                                                     {1.0, 1.0}});
    const Vector b{2.0, 3.0, 5.0};
    const Vector prior{1.0, 1.0};
    const EntropySolverResult r = kl_regularized_ls(a, b, prior, 0.0);
    EXPECT_NEAR(r.s[0], 2.0, 1e-4);
    EXPECT_NEAR(r.s[1], 3.0, 1e-4);
}

TEST(EntropySolver, InfiniteRegularizationSticksToPrior) {
    SparseMatrix a = SparseMatrix::from_dense(Matrix{{1.0, 1.0}});
    const Vector b{10.0};
    const Vector prior{1.0, 2.0};
    // w huge -> stay at the prior.
    const EntropySolverResult r = kl_regularized_ls(a, b, prior, 1e12);
    EXPECT_NEAR(r.s[0], prior[0], 1e-3);
    EXPECT_NEAR(r.s[1], prior[1], 1e-3);
}

TEST(EntropySolver, UnderdeterminedNoWorseThanKlProjection) {
    // One equation, two unknowns: x0 + x1 = 6; prior (1, 2).  The exact
    // KL projection onto the constraint scales the prior: (2, 4).  The
    // solver's objective must not exceed that candidate's.
    SparseMatrix a = SparseMatrix::from_dense(Matrix{{1.0, 1.0}});
    const Vector b{6.0};
    const Vector prior{1.0, 2.0};
    const double w = 1e-3;
    EntropySolverOptions options;
    options.max_iterations = 50000;
    options.tolerance = 1e-13;
    const EntropySolverResult r =
        kl_regularized_ls(a, b, prior, w, options);
    const Vector projection{2.0, 4.0};
    const auto objective = [&](const Vector& s) {
        const Vector resid = sub(a.multiply(s), b);
        return dot(resid, resid) + w * generalized_kl(s, prior);
    };
    EXPECT_NEAR(r.s[0] + r.s[1], 6.0, 1e-2);
    // First-order methods stop at a numerical stationary point; allow a
    // few percent of objective slack against the analytic candidate.
    EXPECT_LE(objective(r.s), 1.05 * objective(projection));
}

TEST(EntropySolver, RejectsNegativeWeight) {
    SparseMatrix a = SparseMatrix::from_dense(Matrix{{1.0}});
    EXPECT_THROW(kl_regularized_ls(a, {1.0}, {1.0}, -1.0),
                 std::invalid_argument);
}

TEST(EntropySolver, DimensionMismatchThrows) {
    SparseMatrix a = SparseMatrix::from_dense(Matrix{{1.0, 1.0}});
    EXPECT_THROW(kl_regularized_ls(a, {1.0, 2.0}, {1.0, 1.0}, 1.0),
                 std::invalid_argument);
}

TEST(EntropySolver, ZeroPriorEntriesAreFloored) {
    SparseMatrix a = SparseMatrix::from_dense(Matrix{{1.0, 1.0}});
    const Vector b{2.0};
    // A zero prior entry must not produce NaNs.
    const EntropySolverResult r = kl_regularized_ls(a, b, {0.0, 1.0}, 1.0);
    EXPECT_TRUE(all_finite(r.s));
    // Mass should concentrate on the pair the prior favours.
    EXPECT_GT(r.s[1], r.s[0]);
}

namespace reference {

/// The pre-operator-rewrite solver, verbatim: per-iteration forward
/// re-multiply, allocating objective evaluation.  Kept as the oracle
/// for the rewrite's bitwise-equivalence pin.
double objective(const SparseMatrix& a, const Vector& b, const Vector& prior,
                 double w, const Vector& s) {
    const Vector r = sub(a.multiply(s), b);
    return dot(r, r) + (w > 0.0 ? w * generalized_kl(s, prior) : 0.0);
}

EntropySolverResult kl_regularized_ls(const SparseMatrix& a, const Vector& b,
                                      const Vector& prior, double w,
                                      const EntropySolverOptions& options) {
    const std::size_t n = a.cols();
    Vector p = prior;
    double pmean = 0.0;
    for (double v : p) pmean += std::max(v, 0.0);
    pmean = (pmean > 0.0 ? pmean / static_cast<double>(n) : 1.0);
    const double floor = options.prior_floor * pmean;
    for (double& v : p) v = std::max(v, floor);

    EntropySolverResult result;
    result.s = p;
    double bscale = nrm_inf(b);
    if (bscale == 0.0) bscale = 1.0;
    const double grad_scale = std::max(1.0, bscale * bscale);
    double f = objective(a, b, p, w, result.s);
    double eta = options.initial_step;
    for (result.iterations = 0; result.iterations < options.max_iterations;
         ++result.iterations) {
        const Vector resid = sub(a.multiply(result.s), b);
        Vector grad = a.multiply_transpose(resid);
        scale(2.0, grad);
        if (w > 0.0) {
            for (std::size_t i = 0; i < n; ++i) {
                grad[i] += w * std::log(result.s[i] / p[i]);
            }
        }
        double stat = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            stat = std::max(stat, std::abs(result.s[i] * grad[i]));
        }
        if (stat <= options.tolerance * grad_scale) {
            result.converged = true;
            break;
        }
        const double norm = std::max(stat, 1e-300);
        bool accepted = false;
        for (int bt = 0; bt < 60; ++bt) {
            Vector trial(n);
            const double step = eta / norm;
            for (std::size_t i = 0; i < n; ++i) {
                double ex = -step * result.s[i] * grad[i];
                ex = std::clamp(ex, -40.0, 40.0);
                trial[i] = result.s[i] * std::exp(ex);
            }
            const double ft = objective(a, b, p, w, trial);
            if (ft < f - 1e-12 * std::abs(f)) {
                result.s = std::move(trial);
                f = ft;
                accepted = true;
                eta = std::min(eta * 2.0, 1e6);
                break;
            }
            eta *= 0.5;
            if (eta < 1e-18) break;
        }
        if (!accepted) {
            result.converged = true;
            break;
        }
    }
    result.objective = f;
    return result;
}

}  // namespace reference

TEST(EntropySolver, OperatorRewriteMatchesReferenceBitwise) {
    // The buffer-reusing operator-form loop carries A s across accepted
    // steps instead of re-multiplying; every objective value, gradient,
    // and Armijo decision must be bit-for-bit the historical solver's.
    std::mt19937_64 rng(41);
    std::uniform_real_distribution<double> dist(0.2, 2.0);
    const std::size_t rows = 7;
    const std::size_t cols = 11;
    Matrix dense(rows, cols, 0.0);
    std::uniform_int_distribution<int> coin(0, 2);
    for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t j = 0; j < cols; ++j) {
            if (coin(rng) == 0) dense(i, j) = 1.0;
        }
    }
    const SparseMatrix a = SparseMatrix::from_dense(dense);
    Vector truth(cols);
    for (double& v : truth) v = dist(rng);
    const Vector b = a.multiply(truth);
    Vector prior(cols);
    for (double& v : prior) v = dist(rng);

    EntropySolverOptions options;
    options.max_iterations = 500;
    for (const double w : {0.0, 0.05, 2.0}) {
        const EntropySolverResult fast =
            kl_regularized_ls(a, b, prior, w, options);
        const EntropySolverResult ref =
            reference::kl_regularized_ls(a, b, prior, w, options);
        EXPECT_EQ(fast.iterations, ref.iterations) << "w=" << w;
        EXPECT_EQ(fast.converged, ref.converged) << "w=" << w;
        EXPECT_EQ(fast.objective, ref.objective) << "w=" << w;
        ASSERT_EQ(fast.s.size(), ref.s.size());
        for (std::size_t i = 0; i < cols; ++i) {
            EXPECT_EQ(fast.s[i], ref.s[i]) << "w=" << w << " i=" << i;
        }
    }
}

TEST(EntropySolver, WarmInitialIterateReachesColdMinimizer) {
    // The rewrite must keep the warm-start contract: strictly convex
    // objective (w > 0), so an arbitrary positive initial iterate lands
    // on the cold minimizer.
    SparseMatrix a = SparseMatrix::from_dense(
        Matrix{{1.0, 1.0, 0.0}, {0.0, 1.0, 1.0}});
    const Vector b{3.0, 4.0};
    const Vector prior{1.0, 1.0, 1.0};
    EntropySolverOptions options;
    options.max_iterations = 50000;
    options.tolerance = 1e-12;
    const EntropySolverResult cold =
        kl_regularized_ls(a, b, prior, 0.3, options);
    const Vector seed{0.9, 1.7, 2.4};
    EntropySolverOptions warm = options;
    warm.initial = &seed;
    const EntropySolverResult hot =
        kl_regularized_ls(a, b, prior, 0.3, warm);
    for (std::size_t i = 0; i < cold.s.size(); ++i) {
        EXPECT_NEAR(hot.s[i], cold.s[i], 1e-5 * (1.0 + cold.s[i]));
    }
}

class EntropySolverProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(EntropySolverProperty, ObjectiveNotWorseThanPrior) {
    std::mt19937_64 rng(GetParam());
    std::uniform_real_distribution<double> dist(0.1, 2.0);
    const std::size_t m = 5;
    const std::size_t n = 9;
    Matrix dense(m, n, 0.0);
    std::uniform_int_distribution<int> coin(0, 1);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (coin(rng) != 0) dense(i, j) = 1.0;
        }
    }
    SparseMatrix a = SparseMatrix::from_dense(dense);
    Vector truth(n);
    for (double& v : truth) v = dist(rng);
    const Vector b = a.multiply(truth);
    Vector prior(n);
    for (double& v : prior) v = dist(rng);

    const double w = 0.1;
    const EntropySolverResult r = kl_regularized_ls(a, b, prior, w);

    auto objective = [&](const Vector& s) {
        const Vector resid = sub(a.multiply(s), b);
        return dot(resid, resid) + w * generalized_kl(s, prior);
    };
    EXPECT_LE(r.objective, objective(prior) + 1e-9);
    EXPECT_NEAR(r.objective, objective(r.s), 1e-9);
    for (double v : r.s) EXPECT_GT(v, 0.0);  // multiplicative iterates
}

TEST_P(EntropySolverProperty, GradientStationarityAtSolution) {
    std::mt19937_64 rng(GetParam() + 99);
    std::uniform_real_distribution<double> dist(0.2, 1.5);
    SparseMatrix a = SparseMatrix::from_dense(
        Matrix{{1.0, 1.0, 0.0}, {0.0, 1.0, 1.0}});
    Vector truth{dist(rng), dist(rng), dist(rng)};
    const Vector b = a.multiply(truth);
    Vector prior{dist(rng), dist(rng), dist(rng)};
    const double w = 0.5;
    EntropySolverOptions options;
    options.max_iterations = 20000;
    options.tolerance = 1e-12;
    const EntropySolverResult r =
        kl_regularized_ls(a, b, prior, w, options);
    // grad = 2A'(As-b) + w log(s/p); complementarity |s .* grad| ~ 0.
    Vector grad = a.multiply_transpose(sub(a.multiply(r.s), b));
    scale(2.0, grad);
    for (std::size_t i = 0; i < 3; ++i) {
        grad[i] += w * std::log(r.s[i] / prior[i]);
        EXPECT_NEAR(r.s[i] * grad[i], 0.0, 1e-5);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EntropySolverProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace tme::linalg
