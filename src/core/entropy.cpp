#include "core/entropy.hpp"

#include <stdexcept>

namespace tme::core {

linalg::Vector entropy_estimate(const SnapshotProblem& problem,
                                const linalg::Vector& prior,
                                const EntropyOptions& options) {
    problem.validate();
    if (prior.size() != problem.routing->cols()) {
        throw std::invalid_argument("entropy_estimate: prior size mismatch");
    }
    if (options.regularization <= 0.0) {
        throw std::invalid_argument(
            "entropy_estimate: regularization must be positive");
    }
    const double w = 1.0 / options.regularization;
    return linalg::kl_regularized_ls(*problem.routing, problem.loads, prior,
                                     w, options.solver)
        .s;
}

}  // namespace tme::core
