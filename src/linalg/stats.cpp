#include "linalg/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace tme::linalg {

double mean(const Vector& x) {
    if (x.empty()) throw std::invalid_argument("mean: empty sample");
    return sum(x) / static_cast<double>(x.size());
}

double variance(const Vector& x) {
    if (x.size() < 2) return 0.0;
    const double m = mean(x);
    double acc = 0.0;
    for (double v : x) acc += (v - m) * (v - m);
    return acc / static_cast<double>(x.size() - 1);
}

Vector sample_mean(const std::vector<Vector>& samples) {
    if (samples.empty()) {
        throw std::invalid_argument("sample_mean: no samples");
    }
    const std::size_t n = samples.front().size();
    Vector m(n, 0.0);
    for (const Vector& s : samples) {
        if (s.size() != n) {
            throw std::invalid_argument("sample_mean: ragged samples");
        }
        axpy(1.0, s, m);
    }
    scale(1.0 / static_cast<double>(samples.size()), m);
    return m;
}

Matrix sample_covariance(const std::vector<Vector>& samples) {
    if (samples.empty()) {
        throw std::invalid_argument("sample_covariance: no samples");
    }
    const std::size_t n = samples.front().size();
    const Vector m = sample_mean(samples);
    Matrix cov(n, n, 0.0);
    for (const Vector& s : samples) {
        Vector d = sub(s, m);
        for (std::size_t i = 0; i < n; ++i) {
            if (d[i] == 0.0) continue;
            for (std::size_t j = i; j < n; ++j) {
                cov(i, j) += d[i] * d[j];
            }
        }
    }
    const double inv_k = 1.0 / static_cast<double>(samples.size());
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
            cov(i, j) *= inv_k;
            cov(j, i) = cov(i, j);
        }
    }
    return cov;
}

LineFit fit_line(const Vector& x, const Vector& y) {
    if (x.size() != y.size() || x.size() < 2) {
        throw std::invalid_argument("fit_line: need >= 2 paired points");
    }
    const double mx = mean(x);
    const double my = mean(y);
    double sxx = 0.0;
    double sxy = 0.0;
    double syy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double dx = x[i] - mx;
        const double dy = y[i] - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    LineFit fit;
    if (sxx == 0.0) {
        fit.slope = 0.0;
        fit.intercept = my;
        fit.r_squared = 0.0;
        return fit;
    }
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    fit.r_squared = (syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy));
    return fit;
}

ScalingLawFit fit_scaling_law(const Vector& means, const Vector& variances,
                              double floor) {
    if (means.size() != variances.size()) {
        throw std::invalid_argument("fit_scaling_law: size mismatch");
    }
    Vector lx;
    Vector ly;
    for (std::size_t i = 0; i < means.size(); ++i) {
        if (means[i] > floor && variances[i] > floor) {
            lx.push_back(std::log(means[i]));
            ly.push_back(std::log(variances[i]));
        }
    }
    ScalingLawFit fit;
    fit.points_used = lx.size();
    if (lx.size() < 2) return fit;
    const LineFit line = fit_line(lx, ly);
    fit.phi = std::exp(line.intercept);
    fit.c = line.slope;
    fit.r_squared = line.r_squared;
    return fit;
}

double pearson(const Vector& x, const Vector& y) {
    if (x.size() != y.size() || x.size() < 2) {
        throw std::invalid_argument("pearson: need >= 2 paired points");
    }
    const double mx = mean(x);
    const double my = mean(y);
    double sxx = 0.0;
    double sxy = 0.0;
    double syy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double dx = x[i] - mx;
        const double dy = y[i] - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0) return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

namespace {

Vector ranks(const Vector& x) {
    std::vector<std::size_t> order(x.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&x](std::size_t a, std::size_t b) { return x[a] < x[b]; });
    Vector r(x.size(), 0.0);
    std::size_t i = 0;
    while (i < order.size()) {
        std::size_t j = i;
        while (j + 1 < order.size() && x[order[j + 1]] == x[order[i]]) ++j;
        // Average rank over the tie group [i, j].
        const double avg = (static_cast<double>(i) + static_cast<double>(j)) /
                               2.0 + 1.0;
        for (std::size_t k = i; k <= j; ++k) r[order[k]] = avg;
        i = j + 1;
    }
    return r;
}

}  // namespace

double spearman(const Vector& x, const Vector& y) {
    return pearson(ranks(x), ranks(y));
}

double quantile(Vector x, double q) {
    if (x.empty()) throw std::invalid_argument("quantile: empty sample");
    if (q < 0.0 || q > 1.0) {
        throw std::invalid_argument("quantile: q outside [0, 1]");
    }
    std::sort(x.begin(), x.end());
    const double pos = q * static_cast<double>(x.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, x.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return x[lo] * (1.0 - frac) + x[hi] * frac;
}

}  // namespace tme::linalg
