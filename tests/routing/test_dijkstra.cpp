#include "routing/dijkstra.hpp"

#include <gtest/gtest.h>

#include "topology/builders.hpp"

namespace tme::routing {
namespace {

topology::Topology diamond() {
    // A -> B -> D and A -> C -> D, with A-B-D cheaper.
    topology::Topology t;
    for (const char* name : {"A", "B", "C", "D"}) {
        t.add_pop({name, 0.0, 0.0, 1.0, topology::PopRole::access});
    }
    t.add_core_link(0, 1, 100.0, 1.0);
    t.add_core_link(1, 3, 100.0, 1.0);
    t.add_core_link(0, 2, 100.0, 5.0);
    t.add_core_link(2, 3, 100.0, 5.0);
    return t;
}

TEST(Dijkstra, PicksCheapestPath) {
    const topology::Topology t = diamond();
    const auto path = shortest_path(t, 0, 3);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->size(), 2u);
    EXPECT_EQ(t.link((*path)[0]).dst, 1u);  // via B
    EXPECT_DOUBLE_EQ(path_metric(t, *path), 2.0);
}

TEST(Dijkstra, FilterForcesDetour) {
    const topology::Topology t = diamond();
    // Exclude the A->B link.
    const LinkFilter filter = [](const topology::Link& l) {
        return !(l.src == 0 && l.dst == 1);
    };
    const auto path = shortest_path(t, 0, 3, filter);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(t.link((*path)[0]).dst, 2u);  // via C
}

TEST(Dijkstra, UnreachableReturnsNullopt) {
    topology::Topology t = diamond();
    t.add_pop({"E", 0.0, 0.0, 1.0, topology::PopRole::access});
    EXPECT_FALSE(shortest_path(t, 0, 4).has_value());
}

TEST(Dijkstra, SelfPathIsEmpty) {
    const topology::Topology t = diamond();
    const auto path = shortest_path(t, 2, 2);
    ASSERT_TRUE(path.has_value());
    EXPECT_TRUE(path->empty());
}

TEST(Dijkstra, TreeDistancesAreConsistent) {
    const topology::Topology t = topology::europe_backbone();
    const ShortestPathTree tree = dijkstra(t, 0);
    for (std::size_t dst = 1; dst < t.pop_count(); ++dst) {
        const auto path = extract_path(t, tree, 0, dst);
        ASSERT_TRUE(path.has_value()) << "unreachable " << dst;
        EXPECT_TRUE(path_is_valid(t, 0, dst, *path));
        EXPECT_DOUBLE_EQ(path_metric(t, *path), tree.distance[dst]);
        EXPECT_EQ(path->size(), tree.hops[dst]);
    }
}

TEST(Dijkstra, DeterministicAcrossRuns) {
    const topology::Topology t = topology::us_backbone();
    const ShortestPathTree a = dijkstra(t, 3);
    const ShortestPathTree b = dijkstra(t, 3);
    for (std::size_t i = 0; i < t.pop_count(); ++i) {
        EXPECT_EQ(a.via_link[i].has_value(), b.via_link[i].has_value());
        if (a.via_link[i]) {
            EXPECT_EQ(*a.via_link[i], *b.via_link[i]);
        }
    }
}

TEST(Dijkstra, TriangleInequalityOverTree) {
    // Property: settled distances never exceed distance-via-neighbour.
    const topology::Topology t = topology::us_backbone();
    const ShortestPathTree tree = dijkstra(t, 7);
    for (std::size_t lid : t.core_links()) {
        const topology::Link& l = t.link(lid);
        EXPECT_LE(tree.distance[l.dst],
                  tree.distance[l.src] + l.igp_metric + 1e-9);
    }
}

TEST(Dijkstra, BadSourceThrows) {
    EXPECT_THROW(dijkstra(diamond(), 9), std::out_of_range);
}

TEST(PathValidation, RejectsBrokenWalks) {
    const topology::Topology t = diamond();
    const auto good = shortest_path(t, 0, 3);
    ASSERT_TRUE(good);
    EXPECT_TRUE(path_is_valid(t, 0, 3, *good));
    // Reversed path is not a valid walk from 0.
    Path reversed(good->rbegin(), good->rend());
    EXPECT_FALSE(path_is_valid(t, 0, 3, reversed));
    // Edge link ids are not core links.
    EXPECT_FALSE(path_is_valid(t, 0, 0, {t.ingress_link(0)}));
}

}  // namespace
}  // namespace tme::routing
