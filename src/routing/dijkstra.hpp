// Shortest-path computation over a topology's core links.
//
// Deterministic tie-breaking (by path length in hops, then by smallest
// predecessor link id) makes routing reproducible across runs, which the
// evaluation pipeline relies on.  A link filter supports CSPF pruning
// (exclude links with insufficient unreserved bandwidth) and failure
// what-if analysis (exclude failed links).
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "topology/topology.hpp"

namespace tme::routing {

/// A path is the sequence of core link ids from source PoP to
/// destination PoP.
using Path = std::vector<std::size_t>;

/// Predicate deciding whether a core link may be used.
using LinkFilter = std::function<bool(const topology::Link&)>;

struct ShortestPathTree {
    std::vector<double> distance;            ///< per PoP; +inf if unreachable
    std::vector<std::size_t> hops;           ///< hop count of chosen path
    std::vector<std::optional<std::size_t>> via_link;  ///< predecessor link
};

/// Dijkstra from `src` over all core links passing `filter` (nullptr means
/// all links pass).  Metric is Link::igp_metric.
ShortestPathTree dijkstra(const topology::Topology& topo, std::size_t src,
                          const LinkFilter& filter = nullptr);

/// Extracts the path src -> dst from a tree; std::nullopt if unreachable.
std::optional<Path> extract_path(const topology::Topology& topo,
                                 const ShortestPathTree& tree,
                                 std::size_t src, std::size_t dst);

/// Convenience: single-pair shortest path.
std::optional<Path> shortest_path(const topology::Topology& topo,
                                  std::size_t src, std::size_t dst,
                                  const LinkFilter& filter = nullptr);

/// Total metric of a path.
double path_metric(const topology::Topology& topo, const Path& path);

/// Validates that `path` is a contiguous src->dst walk over core links.
bool path_is_valid(const topology::Topology& topo, std::size_t src,
                   std::size_t dst, const Path& path);

}  // namespace tme::routing
