#include "core/vardi.hpp"

#include <cmath>
#include <stdexcept>

#include "check/contract.hpp"
#include "check/validators.hpp"
#include "linalg/nnls.hpp"
#include "linalg/stats.hpp"

namespace tme::core {

VardiResult vardi_estimate(const SeriesProblem& problem,
                           const VardiOptions& options) {
    problem.validate();
    if (options.second_moment_weight < 0.0) {
        throw std::invalid_argument("vardi_estimate: negative weight");
    }
    const linalg::SparseMatrix& r = *problem.routing;
    const std::size_t pairs = r.cols();
    const double w = options.second_moment_weight;

    if ((options.mean_loads == nullptr) !=
        (options.load_covariance == nullptr)) {
        throw std::invalid_argument(
            "vardi_estimate: mean_loads and load_covariance must be "
            "supplied together");
    }
    const linalg::Vector that = options.mean_loads != nullptr
                                    ? *options.mean_loads
                                    : linalg::sample_mean(problem.loads);
    const linalg::Matrix sigma =
        options.load_covariance != nullptr
            ? *options.load_covariance
            : linalg::sample_covariance(problem.loads);
    if (that.size() != r.rows() || sigma.rows() != r.rows() ||
        sigma.cols() != r.rows()) {
        throw std::invalid_argument("vardi_estimate: moment dimensions");
    }

    // Gram pieces.  G1 = R'R; the second-moment block contributes
    // G2 = G1 .* G1 (see header) and q_p = r_p' Sigmahat r_p.  The
    // transformed matrix G1 + w*G2 depends only on (R, w), so the
    // engine hands it in pre-built per routing epoch; otherwise it is
    // derived here.
    linalg::Matrix g;
    const linalg::Matrix* gsolve = nullptr;
    if (options.operator_form) {
        // Gram-free path: columns of the transformed Gram are generated
        // on demand inside the solve below; nothing pairs x pairs is
        // built here.
    } else if (options.shared_transformed_gram != nullptr) {
        if (options.shared_transformed_gram->rows() != pairs ||
            options.shared_transformed_gram->cols() != pairs) {
            throw std::invalid_argument(
                "vardi_estimate: shared transformed gram dimension "
                "mismatch");
        }
        gsolve = options.shared_transformed_gram;
    } else if (options.shared_gram != nullptr) {
        if (options.shared_gram->rows() != pairs ||
            options.shared_gram->cols() != pairs) {
            throw std::invalid_argument(
                "vardi_estimate: shared gram dimension mismatch");
        }
        g = *options.shared_gram;
    } else {
        g = r.gram();
    }
    linalg::Vector rhs = r.multiply_transpose(that);

    if (w > 0.0) {
        // Column supports of R for the quadratic forms.
        std::vector<std::vector<std::pair<std::size_t, double>>> columns(
            pairs);
        const auto& offsets = r.row_offsets();
        const auto& cols = r.column_indices();
        const auto& vals = r.values();
        for (std::size_t l = 0; l < r.rows(); ++l) {
            for (std::size_t k = offsets[l]; k < offsets[l + 1]; ++k) {
                columns[cols[k]].push_back({l, vals[k]});
            }
        }
        for (std::size_t p = 0; p < pairs; ++p) {
            double q = 0.0;
            for (const auto& [l, vl] : columns[p]) {
                for (const auto& [m, vm] : columns[p]) {
                    q += vl * vm * sigma(l, m);
                }
            }
            rhs[p] += w * q;
        }
        if (!options.operator_form && gsolve == nullptr) {
            for (std::size_t p = 0; p < pairs; ++p) {
                for (std::size_t qx = 0; qx < pairs; ++qx) {
                    const double g1 = g(p, qx);
                    g(p, qx) = g1 + w * g1 * g1;
                }
            }
        }
    }
    if (!options.operator_form && gsolve == nullptr) gsolve = &g;

    VardiResult result;
    linalg::NnlsOptions nnls_options;
    nnls_options.warm_start = options.warm_start;
    nnls_options.counters = options.counters;
    nnls_options.budget = options.budget;
    if (options.operator_form) {
        if (options.shared_routing_transpose != nullptr &&
            (options.shared_routing_transpose->rows() != pairs ||
             options.shared_routing_transpose->cols() != r.rows())) {
            throw std::invalid_argument(
                "vardi_estimate: shared routing transpose dimension "
                "mismatch");
        }
        linalg::SparseMatrix rt_local;
        if (options.shared_routing_transpose == nullptr) {
            rt_local = linalg::transpose(r);
        }
        const linalg::SparseMatrix& rt =
            options.shared_routing_transpose != nullptr
                ? *options.shared_routing_transpose
                : rt_local;
        const linalg::CsrView rv = r.view();
        const linalg::CsrView rtv = rt.view();
        linalg::GramColumnOracle oracle;
        oracle.dimension = pairs;
        oracle.column = [rv, rtv, w](std::size_t j,
                                     std::vector<double>& scratch,
                                     std::vector<std::size_t>& support) {
            linalg::gram_column(rv, rtv, j, scratch.data(), support);
            if (w > 0.0) {
                // Same expression as the dense transform loop above,
                // applied per support entry (the skipped entries are
                // exact zeros, which the transform maps to zero) — the
                // generated column is bitwise the dense row.
                for (const std::size_t q : support) {
                    const double g1 = scratch[q];
                    scratch[q] = g1 + w * g1 * g1;
                }
            }
        };
        result.lambda =
            linalg::nnls_operator(oracle, rhs, 0.0, nnls_options).x;
    } else {
        result.lambda =
            linalg::nnls_gram(*gsolve, rhs, 0.0, nnls_options).x;
    }

    // Residual diagnostics.
    const linalg::Vector pred = r.multiply(result.lambda);
    result.first_moment_residual = linalg::nrm2(linalg::sub(pred, that));
    if (w > 0.0) {
        // ||R diag(lambda) R' - Sigmahat||_F: accumulate the model
        // covariance M = R D R' from R's column supports (each demand p
        // adds lambda_p r_p r_p'), then take the Frobenius difference.
        double acc = 0.0;
        const std::size_t links = r.rows();
        const auto& offsets = r.row_offsets();
        const auto& cols = r.column_indices();
        const auto& vals = r.values();
        std::vector<std::vector<std::pair<std::size_t, double>>> columns(
            pairs);
        for (std::size_t l = 0; l < r.rows(); ++l) {
            for (std::size_t k = offsets[l]; k < offsets[l + 1]; ++k) {
                columns[cols[k]].push_back({l, vals[k]});
            }
        }
        // links x links second-moment matrix, not pairs x pairs.
        // lint: allow(dense-alloc)
        linalg::Matrix m(links, links, 0.0);
        for (std::size_t p = 0; p < pairs; ++p) {
            const double lp = result.lambda[p];
            if (lp == 0.0) continue;
            for (const auto& [l, vl] : columns[p]) {
                for (const auto& [mm, vm] : columns[p]) {
                    m(l, mm) += vl * vm * lp;
                }
            }
        }
        for (std::size_t l = 0; l < links; ++l) {
            for (std::size_t mm = 0; mm < links; ++mm) {
                const double d = m(l, mm) - sigma(l, mm);
                acc += d * d;
            }
        }
        result.second_moment_residual = std::sqrt(acc);
    }
    TME_CONTRACT_DBG_CHECK(check::solver_boundary(
        "vardi_estimate", result.lambda, /*require_nonnegative=*/true));
    return result;
}

}  // namespace tme::core
