// Worst-case bounds on demands (paper Section 4.3.1).
//
// With no statistical assumptions, a load snapshot t confines the demand
// vector to the polytope S = { s >= 0 : R s = t }.  Bounds for demand p:
//
//     upper_p = max { s_p : s in S },    lower_p = min { s_p : s in S }
//
// — two linear programs per OD pair.  All 2P programs share one feasible
// region, so after the first solve every subsequent program is warm-
// started from the previous optimal basis (phase 1 runs once).  The
// midpoint (upper+lower)/2 is the paper's WCB prior (Fig. 9), which beats
// the gravity prior on their data (Table 2).
#pragma once

#include "core/problem.hpp"

namespace tme::core {

struct WcbOptions {
    /// Use the previous optimal basis to warm-start the next LP.
    bool warm_start = true;
    /// Per-LP iteration cap (0 = solver default).
    std::size_t max_iterations = 0;
};

struct WcbResult {
    linalg::Vector lower;
    linalg::Vector upper;
    linalg::Vector midpoint;  ///< (lower + upper) / 2, the WCB prior
    std::size_t lps_solved = 0;
    std::size_t simplex_iterations = 0;  ///< total across all LPs
    std::size_t failures = 0;  ///< LPs that did not reach optimality
};

/// Computes worst-case bounds for every OD pair (or the subset `pairs`
/// if non-empty).  For pairs not in the subset, bounds are [0, +inf) and
/// midpoint falls back to 0.
WcbResult worst_case_bounds(const SnapshotProblem& problem,
                            const WcbOptions& options = {},
                            const std::vector<std::size_t>& pairs = {});

}  // namespace tme::core
