// Property tests for the serving-layer query API:
//   * top_k ≡ brute-force full sort (descending value, ascending pair
//     on ties) on randomized vectors, ties included, for every k;
//   * delta ≡ elementwise subtraction;
//   * misses are typed errors (pair_out_of_range, method_not_served,
//     version_retired, ...), never silently empty results.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include "serve/publish.hpp"
#include "serve/query.hpp"
#include "serve/store.hpp"

namespace tme::serve {
namespace {

engine::WindowResult make_window(
    std::size_t start, std::size_t end,
    std::vector<std::pair<engine::Method, linalg::Vector>> runs) {
    engine::WindowResult window;
    window.window_start_sample = start;
    window.window_end_sample = end;
    window.window_size = end - start + 1;
    window.epoch_fingerprint = 0x1234;
    for (auto& [method, estimate] : runs) {
        engine::MethodRun run;
        run.method = method;
        run.estimate = std::move(estimate);
        window.runs.push_back(std::move(run));
    }
    return window;
}

std::vector<HeavyHitter> brute_force_top_k(const linalg::Vector& est,
                                           std::size_t k) {
    std::vector<std::size_t> idx(est.size());
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    std::sort(idx.begin(), idx.end(),
              [&est](std::size_t a, std::size_t b) {
                  if (est[a] != est[b]) return est[a] > est[b];
                  return a < b;
              });
    if (k > idx.size()) k = idx.size();
    std::vector<HeavyHitter> out;
    for (std::size_t i = 0; i < k; ++i) {
        out.push_back({idx[i], est[idx[i]]});
    }
    return out;
}

TEST(ServeQueryProperties, TopKMatchesBruteForceSortWithTies) {
    std::mt19937 rng(7);
    for (const std::size_t n : {1u, 2u, 7u, 64u, 300u}) {
        for (int trial = 0; trial < 8; ++trial) {
            linalg::Vector est(n);
            if (trial % 2 == 0) {
                // Discrete values force heavy ties.
                std::uniform_int_distribution<int> d(0, 4);
                for (double& v : est) {
                    v = static_cast<double>(d(rng));
                }
            } else {
                std::uniform_real_distribution<double> d(0.0, 100.0);
                for (double& v : est) v = d(rng);
            }
            EstimateSnapshot snap = EstimateSnapshot::from_window(
                make_window(0, 5, {{engine::Method::gravity, est}}));
            for (const std::size_t k :
                 {std::size_t{1}, std::size_t{3}, n / 2 + 1, n, n + 5}) {
                const auto got =
                    top_k(snap, engine::Method::gravity, k);
                ASSERT_TRUE(got.ok()) << query_status_name(got.status);
                const auto want = brute_force_top_k(est, k);
                ASSERT_EQ(got.value.size(), want.size())
                    << "n=" << n << " k=" << k;
                for (std::size_t i = 0; i < want.size(); ++i) {
                    EXPECT_EQ(got.value[i].pair, want[i].pair)
                        << "n=" << n << " k=" << k << " i=" << i;
                    EXPECT_EQ(got.value[i].value, want[i].value);
                }
            }
        }
    }
}

TEST(ServeQueryProperties, DeltaIsElementwiseSubtraction) {
    std::mt19937 rng(11);
    std::uniform_real_distribution<double> d(-50.0, 50.0);
    for (int trial = 0; trial < 6; ++trial) {
        const std::size_t n = 40 + static_cast<std::size_t>(trial) * 17;
        linalg::Vector a(n), b(n);
        for (std::size_t i = 0; i < n; ++i) {
            a[i] = d(rng);
            b[i] = d(rng);
        }
        const EstimateSnapshot newer = EstimateSnapshot::from_window(
            make_window(6, 11, {{engine::Method::vardi, a}}));
        const EstimateSnapshot older = EstimateSnapshot::from_window(
            make_window(0, 5, {{engine::Method::vardi, b}}));
        const auto got = delta(newer, older, engine::Method::vardi);
        ASSERT_TRUE(got.ok());
        ASSERT_EQ(got.value.size(), n);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(got.value[i], a[i] - b[i]) << "i=" << i;
        }
    }
}

TEST(ServeQueryProperties, LookupsReturnTypedErrorsNotEmptyResults) {
    const linalg::Vector est = {3.0, 1.0, 2.0};
    const EstimateSnapshot snap = EstimateSnapshot::from_window(
        make_window(0, 5, {{engine::Method::gravity, est}}));

    // Pair out of range is a typed error, not 0.0.
    EXPECT_EQ(point(snap, engine::Method::gravity, 3).status,
              QueryStatus::pair_out_of_range);
    EXPECT_EQ(point(snap, engine::Method::gravity, 2).value, 2.0);

    // A method the window did not run is method_not_served everywhere.
    EXPECT_EQ(point(snap, engine::Method::fanout, 0).status,
              QueryStatus::method_not_served);
    EXPECT_EQ(top_k(snap, engine::Method::fanout, 2).status,
              QueryStatus::method_not_served);
    EXPECT_EQ(delta(snap, snap, engine::Method::fanout).status,
              QueryStatus::method_not_served);

    // k == 0 is a caller bug, not an empty list.
    EXPECT_EQ(top_k(snap, engine::Method::gravity, 0).status,
              QueryStatus::zero_k);

    // Shape mismatch between windows is typed.
    const EstimateSnapshot other = EstimateSnapshot::from_window(
        make_window(6, 11, {{engine::Method::gravity, {1.0, 2.0}}}));
    EXPECT_EQ(delta(snap, other, engine::Method::gravity).status,
              QueryStatus::shape_mismatch);
}

TEST(ServeQueryProperties, StoreLookupsReturnTypedErrors) {
    StoreOptions options;
    options.retention = 4;
    EstimateStore store(options);
    Reader reader(store);

    // Empty store.
    EXPECT_EQ(reader.latest().status, QueryStatus::empty_store);
    EXPECT_EQ(reader.at(1).status, QueryStatus::empty_store);
    EXPECT_EQ(reader.window_range(0, 10).status,
              QueryStatus::empty_store);

    // Publish retention + 3 versions; the first three retire.
    for (std::size_t w = 0; w < 7; ++w) {
        store.publish(EstimateSnapshot::from_window(make_window(
            w * 6, w * 6 + 5,
            {{engine::Method::gravity, {1.0, 2.0, 3.0}}})));
    }
    EXPECT_EQ(store.head_version(), 7u);
    EXPECT_EQ(store.floor_version(), 4u);

    EXPECT_EQ(reader.at(0).status, QueryStatus::version_unknown);
    EXPECT_EQ(reader.at(8).status, QueryStatus::version_unknown);
    EXPECT_EQ(reader.at(3).status, QueryStatus::version_retired);
    ASSERT_TRUE(reader.at(4).ok());
    ASSERT_TRUE(reader.at(7).ok());

    // Ranges: inverted bounds are typed; valid ranges resolve.
    EXPECT_EQ(reader.window_range(10, 2).status,
              QueryStatus::invalid_range);
    const auto range = reader.window_range(0, 1000);
    ASSERT_TRUE(range.ok());
    EXPECT_EQ(range.value.size(), 4u);  // the retained window
    EXPECT_EQ(range.value.front().version, 4u);
    EXPECT_EQ(range.value.back().version, 7u);

    // point_series propagates per-snapshot typed errors.
    EXPECT_EQ(reader
                  .point_series(engine::Method::gravity, 99, 0, 1000)
                  .status,
              QueryStatus::pair_out_of_range);
    EXPECT_EQ(reader
                  .point_series(engine::Method::fanout, 0, 0, 1000)
                  .status,
              QueryStatus::method_not_served);
    const auto series =
        reader.point_series(engine::Method::gravity, 1, 0, 1000);
    ASSERT_TRUE(series.ok());
    ASSERT_EQ(series.value.size(), 4u);
    for (const Reader::PointSample& s : series.value) {
        EXPECT_EQ(s.value, 2.0);
    }

    // version_delta: typed range/retirement errors, exact values.
    EXPECT_EQ(reader
                  .version_delta(engine::Method::gravity, 7, 4)
                  .status,
              QueryStatus::invalid_range);
    EXPECT_EQ(reader
                  .version_delta(engine::Method::gravity, 2, 7)
                  .status,
              QueryStatus::version_retired);
    const auto vdelta =
        reader.version_delta(engine::Method::gravity, 4, 7);
    ASSERT_TRUE(vdelta.ok());
    for (double v : vdelta.value) EXPECT_EQ(v, 0.0);
}

TEST(ServeQueryProperties, ReaderHandleExhaustionThrows) {
    StoreOptions options;
    options.max_readers = 2;
    EstimateStore store(options);
    Reader r1(store);
    {
        Reader r2(store);
        EXPECT_THROW(Reader r3(store), std::runtime_error);
    }
    // Destroying a reader releases its handle for reuse.
    Reader r4(store);
}

}  // namespace
}  // namespace tme::serve
