// Serving-layer perf bench: the versioned estimate store's lock-free
// read path under concurrent publishes.
//
// Phase 1 streams a scenario day through the online engine with the
// store attached as its window sink, so the ring is populated exactly
// the way production windows arrive.  Phase 2 then measures the read
// path: several reader threads hammer version-stamped point lookups
// through Reader::latest() while a publisher keeps swapping in new
// versions the whole time.  Sampled acquisitions re-verify the sealed
// checksum (torn-read detection) and record (version, pair-0 value)
// pairs that are compared bitwise afterwards against the publisher's
// own record of what each version contained.
//
// The bench FAILS (non-zero exit) if
//   * aggregate reader throughput falls below 1e6 lookups/s across
//     kReaderThreads threads (skipped, but still measured and printed,
//     on a single-hardware-thread host where concurrent throughput is
//     physically meaningless);
//   * the writer ever waited on a reader (writer_waits() must be 0 —
//     the protocol has no such wait, and this pins that);
//   * any sampled snapshot failed its checksum or version validation;
//   * any recorded reader observation differs bitwise from the
//     publisher's record of the same version.
//
// Results (throughput, publish-latency histogram, deferral counters)
// are written to BENCH_serving.json for cross-PR tracking.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "engine/replay.hpp"
#include "obs/report.hpp"
#include "serve/publish.hpp"
#include "serve/store.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

constexpr int kReaderThreads = 4;
constexpr std::uint64_t kSampleMask = 1023;  // checksum every 1024th

/// One sampled reader observation, verified bitwise post-hoc.
struct ReadSample {
    std::uint64_t version = 0;
    double pair0 = 0.0;
};

struct ReaderStats {
    std::uint64_t lookups = 0;
    std::uint64_t violations = 0;  ///< torn / inconsistent snapshots
    std::vector<ReadSample> samples;
    double sink = 0.0;  ///< defeats dead-code elimination
};

}  // namespace

int main(int argc, char** argv) {
    using namespace tme;

    std::size_t samples = 96;
    double read_seconds = 0.8;
    std::string json_path = "BENCH_serving.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--samples") && i + 1 < argc) {
            samples = static_cast<std::size_t>(std::atoi(argv[++i]));
        } else if (!std::strcmp(argv[i], "--read-seconds") && i + 1 < argc) {
            read_seconds = std::atof(argv[++i]);
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::printf("usage: %s [--samples N] [--read-seconds S] "
                        "[--json PATH]\n",
                        argv[0]);
            return 2;
        }
    }
    if (samples == 0 || read_seconds <= 0.0) {
        std::printf("error: --samples and --read-seconds must be "
                    "positive\n");
        return 2;
    }

    bench::header(
        "Serving layer: lock-free snapshot reads under live publishes",
        "versioned estimate store (seqlock/RCU hybrid) serving the "
        "engine's per-window estimates to operators",
        "readers sustain >= 1e6 lookups/s with zero writer stalls and "
        "bitwise-consistent snapshots");

    scenario::Scenario sc = scenario::make_scenario(scenario::Network::europe);
    samples = std::min(samples, sc.loads.size());
    sc.demands.resize(samples);
    sc.loads.resize(samples);

    engine::EngineConfig config;
    config.window_size = 6;
    config.methods = {engine::Method::gravity, engine::Method::kruithof};

    serve::EstimateStore store;  // default retention 8, 64 readers

    // ---- Phase 1: populate through the engine's window sink.
    engine::OnlineEngine eng(sc.topo, sc.routing, config);
    eng.set_window_sink(serve::make_publisher(store));
    engine::ReplayOptions replay_options;
    replay_options.attach_truth = false;
    const Clock::time_point t_replay = Clock::now();
    const engine::ReplayResult replay =
        engine::replay_scenario(eng, sc, replay_options);
    const double replay_wall = seconds_since(t_replay);
    if (store.head_version() != replay.windows.size() ||
        replay.windows.empty()) {
        std::printf("FAIL: sink published %llu versions for %zu windows\n",
                    static_cast<unsigned long long>(store.head_version()),
                    replay.windows.size());
        return 1;
    }
    std::size_t pairs = 0;
    {
        serve::Reader probe(store);
        pairs = probe.latest().value->pair_count();
    }
    std::printf("network=%s samples=%zu window=%zu pairs=%zu "
                "(replay+publish %.3fs)\n\n",
                sc.name.c_str(), samples, config.window_size, pairs,
                replay_wall);

    // ---- Phase 2: readers vs a live publisher.
    // The publisher cycles through the replay's windows so consecutive
    // versions carry different payloads (a same-payload republish would
    // make the bitwise check vacuous), and records each version's
    // pair-0 gravity value for the post-hoc comparison.
    std::atomic<bool> stop{false};
    std::vector<double> expected;  // index: version - 1
    expected.reserve(1u << 20);
    {
        serve::Reader probe(store);
        for (std::uint64_t v = 1; v <= store.head_version(); ++v) {
            const serve::QueryResult<serve::SnapshotRef> ref = probe.at(v);
            // Phase-1 versions below the floor are gone; only their
            // successors can still be observed by phase-2 readers.
            expected.push_back(ref.ok()
                                   ? serve::point(*ref.value,
                                                  engine::Method::gravity, 0)
                                         .value
                                   : 0.0);
        }
    }
    std::thread publisher([&store, &replay, &expected, &stop] {
        std::size_t cycle = 0;
        while (!stop.load(std::memory_order_acquire)) {
            const engine::WindowResult& w =
                replay.windows[cycle % replay.windows.size()];
            ++cycle;
            store.publish(serve::EstimateSnapshot::from_window(w));
            expected.push_back(w.runs.front().estimate[0]);
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
    });

    std::vector<ReaderStats> stats(kReaderThreads);
    std::vector<std::thread> readers;
    readers.reserve(kReaderThreads);
    const Clock::time_point t_read = Clock::now();
    for (int t = 0; t < kReaderThreads; ++t) {
        readers.emplace_back([&store, &stop, &stats, t, pairs] {
            serve::Reader reader(store);
            ReaderStats& out = stats[static_cast<std::size_t>(t)];
            std::uint64_t lcg =
                0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(t) + 1);
            while (!stop.load(std::memory_order_acquire)) {
                const serve::QueryResult<serve::SnapshotRef> ref =
                    reader.latest();
                if (!ref.ok()) continue;
                lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
                const std::size_t pair =
                    static_cast<std::size_t>(lcg >> 33) % pairs;
                const serve::QueryResult<double> pt =
                    serve::point(*ref.value, engine::Method::gravity, pair);
                if (!pt.ok()) {
                    ++out.violations;
                    continue;
                }
                out.sink += pt.value;
                ++out.lookups;
                if ((out.lookups & kSampleMask) == 0) {
                    // Sampled deep check: stamped version and sealed
                    // checksum must agree (torn-read detection), and the
                    // pair-0 value is recorded for the bitwise replay.
                    if (ref.value->version() != ref.value.version ||
                        !ref.value->consistent()) {
                        ++out.violations;
                        continue;
                    }
                    const serve::QueryResult<double> p0 = serve::point(
                        *ref.value, engine::Method::gravity, 0);
                    if (out.samples.size() < 65536 && p0.ok()) {
                        out.samples.push_back(
                            {ref.value.version, p0.value});
                    }
                }
            }
        });
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(read_seconds));
    const double read_wall = seconds_since(t_read);
    stop.store(true, std::memory_order_release);
    for (std::thread& th : readers) th.join();
    publisher.join();

    const std::uint64_t publishes_during_read =
        store.head_version() - replay.windows.size();
    std::uint64_t total_lookups = 0;
    std::uint64_t violations = 0;
    std::uint64_t bitwise_mismatches = 0;
    std::uint64_t replayed_samples = 0;
    double sink = 0.0;
    for (const ReaderStats& s : stats) {
        total_lookups += s.lookups;
        violations += s.violations;
        sink += s.sink;
        for (const ReadSample& sample : s.samples) {
            ++replayed_samples;
            const double want =
                expected[static_cast<std::size_t>(sample.version - 1)];
            // Bitwise: a snapshot read during a publish must still be
            // exactly the payload that version was published with.
            if (sample.pair0 != want) ++bitwise_mismatches;
        }
    }
    const double lookups_per_second =
        static_cast<double>(total_lookups) / read_wall;

    const obs::HistogramSnapshot latency = store.publish_latency();
    std::printf("readers=%d wall=%.3fs lookups=%llu  ->  %.2fM lookups/s "
                "(sink %.3g)\n",
                kReaderThreads, read_wall,
                static_cast<unsigned long long>(total_lookups),
                lookups_per_second / 1e6, sink);
    std::printf("publishes during read: %llu (total versions %llu, "
                "reclaim deferred %llu)\n",
                static_cast<unsigned long long>(publishes_during_read),
                static_cast<unsigned long long>(store.head_version()),
                static_cast<unsigned long long>(store.reclaim_deferred()));
    std::printf("publish latency: count=%llu p50=%.1fus p95=%.1fus "
                "p99=%.1fus max=%.1fus\n",
                static_cast<unsigned long long>(latency.count),
                latency.p50() * 1e6, latency.p95() * 1e6,
                latency.p99() * 1e6, latency.max_seconds() * 1e6);
    std::printf("checksum-verified samples: %llu (violations %llu, "
                "bitwise mismatches %llu)\n",
                static_cast<unsigned long long>(replayed_samples),
                static_cast<unsigned long long>(violations),
                static_cast<unsigned long long>(bitwise_mismatches));

    // On one hardware thread, 4 readers + 1 publisher timeshare a
    // single core; the absolute-throughput gate is skipped (but still
    // measured) exactly like the fleet gate in bench_perf_engine.
    const bool throughput_gate_applicable =
        std::thread::hardware_concurrency() >= 2;

    obs::Report report("bench_perf_serving");
    report.set("network", sc.name);
    report.set("samples", samples);
    report.set("pairs", pairs);
    report.set("reader_threads", kReaderThreads);
    report.set("read_wall_seconds", read_wall);
    report.set("total_lookups", total_lookups);
    report.set("lookups_per_second", lookups_per_second);
    report.set("publishes_during_read", publishes_during_read);
    report.set("checksum_verified_samples", replayed_samples);
    report.set("consistency_violations", violations);
    report.set("bitwise_mismatches", bitwise_mismatches);
    report.set("throughput_gate_applied", throughput_gate_applicable);
    report.set("store", store.to_json());
    if (report.write_file(json_path)) {
        std::printf("\nwrote %s\n", json_path.c_str());
    } else {
        std::printf("\nWARNING: could not write %s\n", json_path.c_str());
    }

    bool ok = true;
    if (throughput_gate_applicable && lookups_per_second < 1e6) {
        std::printf("FAIL: aggregate reader throughput below the 1M/s "
                    "gate (%.2fM lookups/s)\n",
                    lookups_per_second / 1e6);
        ok = false;
    } else if (!throughput_gate_applicable) {
        std::printf("NOTE: single hardware thread — 1M lookups/s gate "
                    "skipped (measured %.2fM/s)\n",
                    lookups_per_second / 1e6);
    }
    if (store.writer_waits() != 0) {
        std::printf("FAIL: writer waited on readers %llu times (must "
                    "be 0)\n",
                    static_cast<unsigned long long>(store.writer_waits()));
        ok = false;
    }
    if (violations != 0) {
        std::printf("FAIL: %llu snapshots failed version/checksum "
                    "validation\n",
                    static_cast<unsigned long long>(violations));
        ok = false;
    }
    if (bitwise_mismatches != 0) {
        std::printf("FAIL: %llu reads differ bitwise from the published "
                    "payload of the same version\n",
                    static_cast<unsigned long long>(bitwise_mismatches));
        ok = false;
    }
    if (publishes_during_read == 0) {
        std::printf("FAIL: no publishes landed during the read phase — "
                    "the concurrency claim was not exercised\n");
        ok = false;
    }
    if (latency.count == 0) {
        std::printf("FAIL: empty publish-latency histogram\n");
        ok = false;
    }
    if (ok) {
        std::printf("\nPASS: %.2fM lookups/s across %d readers, %llu "
                    "live publishes, 0 writer waits, all sampled reads "
                    "bitwise consistent\n",
                    lookups_per_second / 1e6, kReaderThreads,
                    static_cast<unsigned long long>(publishes_during_read));
    }
    return ok ? 0 : 1;
}
