#include "linalg/qp.hpp"

#include <gtest/gtest.h>

#include <random>

namespace tme::linalg {
namespace {

TEST(EqQp, SimpleProjection) {
    // min 1/2||x||^2 - 0 s.t. x0 + x1 = 2 -> x = (1, 1).
    const Matrix h = Matrix::identity(2);
    const Vector f{0.0, 0.0};
    const Matrix e{{1.0, 1.0}};
    const Vector d{2.0};
    const Vector x = solve_eq_qp(h, f, e, d);
    EXPECT_NEAR(x[0], 1.0, 1e-10);
    EXPECT_NEAR(x[1], 1.0, 1e-10);
}

TEST(EqQp, UnconstrainedReducesToLinearSolve) {
    const Matrix h{{2.0, 0.0}, {0.0, 4.0}};
    const Vector f{2.0, 8.0};
    const Vector x = solve_eq_qp(h, f, Matrix(0, 2), {});
    EXPECT_NEAR(x[0], 1.0, 1e-10);
    EXPECT_NEAR(x[1], 2.0, 1e-10);
}

TEST(EqQp, DimensionMismatchThrows) {
    EXPECT_THROW(
        solve_eq_qp(Matrix::identity(2), {1.0}, Matrix(0, 2), {}),
        std::invalid_argument);
}

TEST(EqQp, SingularKktThrows) {
    // Duplicate equality constraints make the KKT system singular.
    const Matrix h = Matrix::identity(2);
    const Matrix e{{1.0, 1.0}, {1.0, 1.0}};
    EXPECT_THROW(solve_eq_qp(h, {0.0, 0.0}, e, {1.0, 1.0}),
                 std::runtime_error);
}

TEST(EqQpNonneg, MatchesEqualityOnlyWhenInterior) {
    const Matrix h = Matrix::identity(2);
    const Vector f{0.0, 0.0};
    const Matrix e{{1.0, 1.0}};
    const Vector d{2.0};
    const EqQpNonnegResult r = solve_eq_qp_nonneg(h, f, e, d);
    EXPECT_NEAR(r.x[0], 1.0, 1e-5);
    EXPECT_NEAR(r.x[1], 1.0, 1e-5);
    EXPECT_LT(r.equality_violation, 1e-6);
}

TEST(EqQpNonneg, ClampsNegativeCoordinates) {
    // min 1/2 x'Ix - f'x with f = (3, -1), sum = 2: unconstrained
    // equality solution is (3, -1)+nu*(1,1) -> (2.5, -0.5)... must clamp
    // x1 to 0 and put everything on x0.
    const Matrix h = Matrix::identity(2);
    const Vector f{3.0, -1.0};
    const Matrix e{{1.0, 1.0}};
    const Vector d{2.0};
    const EqQpNonnegResult r = solve_eq_qp_nonneg(h, f, e, d);
    EXPECT_NEAR(r.x[0], 2.0, 1e-5);
    EXPECT_NEAR(r.x[1], 0.0, 1e-8);
}

TEST(EqQpNonneg, ReportsActiveSet) {
    const Matrix h = Matrix::identity(2);
    const Vector f{3.0, -1.0};
    const Matrix e{{1.0, 1.0}};
    const Vector d{2.0};
    const EqQpNonnegResult r = solve_eq_qp_nonneg(h, f, e, d);
    ASSERT_EQ(r.active.size(), 2u);
    EXPECT_EQ(r.active[0], 0);
    EXPECT_NE(r.active[1], 0);
    EXPECT_EQ(r.x[1], 0.0);
}

TEST(EqQpNonnegWarm, ExactSeedConvergesInOneSolve) {
    const Matrix h = Matrix::identity(2);
    const Vector f{3.0, -1.0};
    const Matrix e{{1.0, 1.0}};
    const Vector d{2.0};
    const EqQpNonnegResult cold = solve_eq_qp_nonneg(h, f, e, d);
    ASSERT_TRUE(cold.converged);
    EXPECT_GT(cold.iterations, 1u);

    EqQpNonnegOptions options;
    options.warm_start = &cold.x;
    const EqQpNonnegResult warm = solve_eq_qp_nonneg(h, f, e, d, options);
    ASSERT_TRUE(warm.converged);
    EXPECT_TRUE(warm.warm_accepted);
    EXPECT_EQ(warm.iterations, 1u);
    EXPECT_NEAR(warm.x[0], cold.x[0], 1e-10);
    EXPECT_NEAR(warm.x[1], cold.x[1], 1e-10);
}

TEST(EqQpNonnegWarm, InconsistentSeedStillReturnsColdMinimizer) {
    // Seed pins the coordinate the optimum needs free (and frees the
    // one that must be pinned): verification must repair or fall back,
    // never return a seed-biased point.
    const Matrix h = Matrix::identity(2);
    const Vector f{3.0, -1.0};
    const Matrix e{{1.0, 1.0}};
    const Vector d{2.0};
    const EqQpNonnegResult cold = solve_eq_qp_nonneg(h, f, e, d);

    const Vector wrong{0.0, 2.0};
    EqQpNonnegOptions options;
    options.warm_start = &wrong;
    const EqQpNonnegResult warm = solve_eq_qp_nonneg(h, f, e, d, options);
    ASSERT_TRUE(warm.converged);
    EXPECT_NEAR(warm.x[0], cold.x[0], 1e-9);
    EXPECT_NEAR(warm.x[1], cold.x[1], 1e-9);
}

TEST(EqQpNonnegWarm, AllZeroSeedRunsCold) {
    // A seed with nothing free cannot satisfy E x = d; the solver must
    // ignore it and solve cold.
    const Matrix h = Matrix::identity(2);
    const Vector f{0.0, 0.0};
    const Matrix e{{1.0, 1.0}};
    const Vector d{2.0};
    const Vector zeros(2, 0.0);
    EqQpNonnegOptions options;
    options.warm_start = &zeros;
    const EqQpNonnegResult r = solve_eq_qp_nonneg(h, f, e, d, options);
    EXPECT_FALSE(r.warm_accepted);
    EXPECT_NEAR(r.x[0], 1.0, 1e-8);
    EXPECT_NEAR(r.x[1], 1.0, 1e-8);
}

TEST(EqQpNonnegWarm, SeedPinningAWholeEqualityRowFallsBackCold) {
    // Pinning every variable of one sum constraint leaves that
    // multiplier row without free support — a structurally singular
    // KKT system.  The solver must fall back to the cold path instead
    // of throwing.
    const Matrix h = Matrix::identity(4);
    const Vector f{1.0, 2.0, 1.0, 2.0};
    Matrix e(2, 4, 0.0);
    e(0, 0) = e(0, 1) = 1.0;
    e(1, 2) = e(1, 3) = 1.0;
    const Vector d{1.0, 1.0};
    const EqQpNonnegResult cold = solve_eq_qp_nonneg(h, f, e, d);

    const Vector seed{0.0, 0.0, 0.5, 0.5};  // row 0 fully pinned
    EqQpNonnegOptions options;
    options.warm_start = &seed;
    const EqQpNonnegResult warm = solve_eq_qp_nonneg(h, f, e, d, options);
    EXPECT_FALSE(warm.warm_accepted);
    ASSERT_TRUE(warm.converged);
    for (std::size_t j = 0; j < 4; ++j) {
        EXPECT_NEAR(warm.x[j], cold.x[j], 1e-9) << "var " << j;
    }
}

TEST(EqQpNonnegWarm, SizeMismatchThrows) {
    const Matrix h = Matrix::identity(2);
    const Vector bad(3, 1.0);
    EqQpNonnegOptions options;
    options.warm_start = &bad;
    EXPECT_THROW(solve_eq_qp_nonneg(h, {0.0, 0.0}, Matrix{{1.0, 1.0}},
                                    {2.0}, options),
                 std::invalid_argument);
}

class EqQpNonnegProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(EqQpNonnegProperty, FeasibleAndNoWorseThanProjectedCandidates) {
    std::mt19937_64 rng(GetParam());
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    const std::size_t n = 6;
    Matrix a(8, n);
    for (std::size_t i = 0; i < 8; ++i) {
        for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
    }
    Matrix h = gram(a);
    for (std::size_t i = 0; i < n; ++i) h(i, i) += 0.1;
    Vector f(n);
    for (double& v : f) v = dist(rng);
    // Two disjoint sum constraints.
    Matrix e(2, n, 0.0);
    for (std::size_t j = 0; j < n / 2; ++j) e(0, j) = 1.0;
    for (std::size_t j = n / 2; j < n; ++j) e(1, j) = 1.0;
    const Vector d{1.0, 1.0};

    const EqQpNonnegResult r = solve_eq_qp_nonneg(h, f, e, d);
    EXPECT_LT(r.equality_violation, 1e-5);
    for (double v : r.x) EXPECT_GE(v, -1e-12);

    // Objective no worse than a uniform feasible candidate.
    auto objective = [&](const Vector& x) {
        double acc = 0.0;
        const Vector hx = gemv(h, x);
        for (std::size_t i = 0; i < n; ++i) {
            acc += 0.5 * x[i] * hx[i] - f[i] * x[i];
        }
        return acc;
    };
    Vector uniform(n, 1.0 / static_cast<double>(n / 2));
    EXPECT_LE(objective(r.x), objective(uniform) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EqQpNonnegProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

class EqQpNonnegScale : public ::testing::TestWithParam<unsigned> {};

TEST_P(EqQpNonnegScale, LargeLoadsDoNotBurnExtraRounds) {
    // Regression for the absolute negativity threshold: scaling f and d
    // by 1e9 scales the solution by 1e9, and LU round-off on
    // numerically-zero coordinates lands around 1e9 * eps >> 1e-9.  An
    // absolute threshold mislabels those coordinates negative and burns
    // extra active-set rounds; the scale-relative threshold must make
    // the solve path identical at both magnitudes.
    std::mt19937_64 rng(GetParam());
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    const std::size_t n = 6;
    Matrix a(8, n);
    for (std::size_t i = 0; i < 8; ++i) {
        for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
    }
    Matrix h = gram(a);
    for (std::size_t i = 0; i < n; ++i) h(i, i) += 0.1;
    Vector f(n);
    for (double& v : f) v = dist(rng);
    Matrix e(2, n, 0.0);
    for (std::size_t j = 0; j < n / 2; ++j) e(0, j) = 1.0;
    for (std::size_t j = n / 2; j < n; ++j) e(1, j) = 1.0;
    const Vector d{1.0, 1.0};

    const EqQpNonnegResult base = solve_eq_qp_nonneg(h, f, e, d);
    ASSERT_TRUE(base.converged);

    const double scale = 1e9;
    Vector f_big = f;
    for (double& v : f_big) v *= scale;
    const Vector d_big{scale, scale};
    const EqQpNonnegResult big = solve_eq_qp_nonneg(h, f_big, e, d_big);
    ASSERT_TRUE(big.converged);

    // Same active-set path at both magnitudes, and the solution scales.
    EXPECT_EQ(big.iterations, base.iterations);
    ASSERT_EQ(big.active.size(), base.active.size());
    for (std::size_t j = 0; j < n; ++j) {
        EXPECT_EQ(big.active[j] != 0, base.active[j] != 0) << "var " << j;
        EXPECT_NEAR(big.x[j], scale * base.x[j], 1e-6 * scale)
            << "var " << j;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EqQpNonnegScale,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace tme::linalg
