// Capacity planning / failure what-if analysis with an ESTIMATED traffic
// matrix — the paper's motivating application ("instrumental in traffic
// engineering, network management and provisioning").
//
// The operator cannot see the true demands; they estimate the traffic
// matrix from link loads (Bayesian method, gravity prior), then ask:
// "if core link X fails and traffic reroutes, which links saturate?"
// We compare the answer computed from the estimate against the answer
// from the hidden ground truth to show estimation is good enough for
// this task.
#include <algorithm>
#include <cstdio>
#include <optional>

#include "core/bayesian.hpp"
#include "core/gravity.hpp"
#include "routing/routing_matrix.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace tme;

// Re-routes every pair with IGP shortest paths that exclude `failed`,
// and returns the resulting core-link utilizations.
linalg::Vector reroute_loads(const topology::Topology& topo,
                             const linalg::Vector& demands,
                             std::size_t failed_link) {
    const routing::LinkFilter filter =
        [failed_link](const topology::Link& l) {
            return l.id != failed_link;
        };
    linalg::Vector loads(topo.link_count(), 0.0);
    for (std::size_t src = 0; src < topo.pop_count(); ++src) {
        const routing::ShortestPathTree tree =
            routing::dijkstra(topo, src, filter);
        for (std::size_t dst = 0; dst < topo.pop_count(); ++dst) {
            if (src == dst) continue;
            const auto path = routing::extract_path(topo, tree, src, dst);
            if (!path) continue;  // partitioned: demand is lost
            const double d = demands[topo.pair_index(src, dst)];
            for (std::size_t lid : *path) loads[lid] += d;
        }
    }
    return loads;
}

}  // namespace

int main() {
    const scenario::Scenario sc =
        scenario::make_scenario(scenario::Network::europe);

    // The operator's view: estimated TM from the busy-hour link loads.
    const core::SnapshotProblem snap = sc.busy_snapshot();
    const linalg::Vector prior = core::gravity_estimate(snap);
    core::BayesianOptions options;
    options.regularization = 1e4;
    const linalg::Vector estimate =
        core::bayesian_estimate(snap, prior, options);
    const linalg::Vector& truth = sc.busy_snapshot_demands();

    // What-if: fail each of the 5 busiest core links in turn.
    std::vector<std::pair<double, std::size_t>> busiest;
    for (std::size_t lid : sc.topo.core_links()) {
        busiest.push_back({snap.loads[lid], lid});
    }
    std::sort(busiest.rbegin(), busiest.rend());

    std::printf("Failure what-if on %s (demands in normalized units):\n\n",
                sc.name.c_str());
    std::printf("%-28s %16s %16s %8s\n", "failed core link",
                "peak util (est)", "peak util (true)", "agree?");
    for (int i = 0; i < 5; ++i) {
        const std::size_t failed = busiest[static_cast<std::size_t>(i)].second;
        const topology::Link& l = sc.topo.link(failed);
        const linalg::Vector est_loads =
            reroute_loads(sc.topo, estimate, failed);
        const linalg::Vector true_loads =
            reroute_loads(sc.topo, truth, failed);

        // Busiest surviving core link (relative to capacity) under each.
        auto peak = [&](const linalg::Vector& loads) {
            double best = 0.0;
            std::size_t arg = 0;
            for (std::size_t lid : sc.topo.core_links()) {
                if (lid == failed) continue;
                const double u = loads[lid] * sc.scale_mbps /
                                 sc.topo.link(lid).capacity_mbps;
                if (u > best) {
                    best = u;
                    arg = lid;
                }
            }
            return std::make_pair(best, arg);
        };
        const auto [est_peak, est_arg] = peak(est_loads);
        const auto [true_peak, true_arg] = peak(true_loads);
        std::printf("%-12s->%-14s %15.1f%% %15.1f%% %8s\n",
                    sc.topo.pop(l.src).name.c_str(),
                    sc.topo.pop(l.dst).name.c_str(), 100.0 * est_peak,
                    100.0 * true_peak,
                    est_arg == true_arg ? "yes" : "no");
    }
    std::printf(
        "\nThe estimated matrix identifies the same post-failure hotspot\n"
        "links as the hidden ground truth - the estimation quality the\n"
        "paper targets for traffic engineering tasks.\n");
    return 0;
}
