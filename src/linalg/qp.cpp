#include "linalg/qp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "linalg/lu.hpp"

namespace tme::linalg {

Vector solve_eq_qp(const Matrix& h, const Vector& f, const Matrix& e,
                   const Vector& d) {
    const std::size_t n = h.rows();
    const std::size_t m = e.rows();
    if (h.cols() != n || f.size() != n || (m > 0 && e.cols() != n) ||
        d.size() != m) {
        throw std::invalid_argument("solve_eq_qp: dimension mismatch");
    }
    // KKT system: [H E'; E 0] [x; nu] = [f; d].
    Matrix kkt(n + m, n + m, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) kkt(i, j) = h(i, j);
    }
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            kkt(n + i, j) = e(i, j);
            kkt(j, n + i) = e(i, j);
        }
    }
    Vector rhs(n + m, 0.0);
    for (std::size_t i = 0; i < n; ++i) rhs[i] = f[i];
    for (std::size_t i = 0; i < m; ++i) rhs[n + i] = d[i];

    Lu lu(kkt);
    if (lu.singular()) {
        throw std::runtime_error("solve_eq_qp: singular KKT system");
    }
    Vector sol = lu.solve(rhs);
    return Vector(sol.begin(), sol.begin() + static_cast<std::ptrdiff_t>(n));
}

EqQpNonnegResult solve_eq_qp_nonneg(const Matrix& h, const Vector& f,
                                    const Matrix& e, const Vector& d,
                                    const EqQpNonnegOptions& options) {
    const std::size_t n = h.rows();
    const std::size_t m = e.rows();
    if (h.cols() != n || f.size() != n || (m > 0 && e.cols() != n) ||
        d.size() != m) {
        throw std::invalid_argument("solve_eq_qp_nonneg: dimension mismatch");
    }
    const SparseMatrix* eop = options.equality_operator;
    if (eop != nullptr && (eop->rows() != m || eop->cols() != n)) {
        throw std::invalid_argument(
            "solve_eq_qp_nonneg: equality_operator dimensions do not "
            "match e");
    }
    // Active-set on the non-negativity constraints over exact KKT solves
    // of the equality-constrained subproblem (free variables only).  A
    // penalty reformulation would bury the data term's fine structure
    // under the penalty's conditioning; the KKT route preserves it.
    double hmax = 1.0;
    for (std::size_t i = 0; i < n; ++i) hmax = std::max(hmax, h(i, i));
    double fmax = 1.0;
    for (std::size_t i = 0; i < n; ++i) fmax = std::max(fmax, std::abs(f[i]));

    std::vector<std::uint8_t> fixed_zero(n, 0);
    EqQpNonnegResult result;
    result.x.assign(n, 0.0);

    // Warm start: pin the coordinates the seed holds at zero.  A seed
    // with nothing free cannot satisfy a generic E x = d; run cold.
    bool seeded = false;
    if (options.warm_start != nullptr) {
        if (options.warm_start->size() != n) {
            throw std::invalid_argument(
                "solve_eq_qp_nonneg: warm start size mismatch");
        }
        std::size_t pinned = 0;
        for (std::size_t j = 0; j < n; ++j) {
            fixed_zero[j] = (*options.warm_start)[j] <= 0.0 ? 1 : 0;
            pinned += fixed_zero[j];
        }
        if (pinned < n) {
            seeded = true;
        } else {
            std::fill(fixed_zero.begin(), fixed_zero.end(), 0);
        }
    }

    const std::size_t max_rounds = 3 * n + 16;
    constexpr std::size_t kMaxSeedRepairs = 4;
    std::size_t releases = 0;
    std::size_t seed_repairs = 0;
    for (std::size_t round = 0; round < max_rounds; ++round) {
        std::vector<std::size_t> free_vars;
        for (std::size_t j = 0; j < n; ++j) {
            if (!fixed_zero[j]) free_vars.push_back(j);
        }
        if (free_vars.empty()) break;
        const std::size_t k = free_vars.size();

        // A seed that pins an equality row's entire support leaves the
        // KKT system structurally singular (a multiplier row with no
        // free columns); fall back to cold before burning ridge
        // escalations on it.
        if (seeded) {
            bool rows_supported = true;
            if (eop != nullptr) {
                const CsrView ev = eop->view();
                for (std::size_t r = 0; r < m && rows_supported; ++r) {
                    bool has_free = false;
                    for (std::size_t t = ev.offsets[r];
                         t < ev.offsets[r + 1] && !has_free; ++t) {
                        has_free = !fixed_zero[ev.col_index[t]];
                    }
                    rows_supported = has_free;
                }
            } else {
                for (std::size_t r = 0; r < m && rows_supported; ++r) {
                    bool has_free = false;
                    for (std::size_t a = 0; a < k && !has_free; ++a) {
                        has_free = e(r, free_vars[a]) != 0.0;
                    }
                    rows_supported = has_free;
                }
            }
            if (!rows_supported) {
                std::fill(fixed_zero.begin(), fixed_zero.end(), 0);
                seeded = false;
                continue;
            }
        }
        ++result.iterations;

        // KKT system on the free variables, ridge-regularized because H
        // restricted to the constraint manifold may be singular.  The
        // off-diagonal blocks do not depend on the ridge, so the system
        // is assembled once and only the diagonal is rewritten when a
        // singular factorization forces an escalation.
        Matrix kkt(k + m, k + m, 0.0);
        Vector rhs(k + m, 0.0);
        for (std::size_t a = 0; a < k; ++a) {
            rhs[a] = f[free_vars[a]];
            const double* __restrict hrow = h.row_data(free_vars[a]);
            double* __restrict krow = kkt.row_data(a);
            for (std::size_t b = 0; b < k; ++b) {
                krow[b] = hrow[free_vars[b]];
            }
        }
        if (eop != nullptr) {
            // Free-variable index per column, for scattering E's
            // nonzeros straight into the bordered blocks.
            std::vector<std::size_t> free_index(n, SIZE_MAX);
            for (std::size_t a = 0; a < k; ++a) {
                free_index[free_vars[a]] = a;
            }
            const CsrView ev = eop->view();
            for (std::size_t r = 0; r < m; ++r) {
                for (std::size_t t = ev.offsets[r]; t < ev.offsets[r + 1];
                     ++t) {
                    const std::size_t a = free_index[ev.col_index[t]];
                    if (a == SIZE_MAX) continue;
                    kkt(a, k + r) = ev.values[t];
                    kkt(k + r, a) = ev.values[t];
                }
            }
        } else {
            for (std::size_t a = 0; a < k; ++a) {
                for (std::size_t r = 0; r < m; ++r) {
                    kkt(a, k + r) = e(r, free_vars[a]);
                    kkt(k + r, a) = e(r, free_vars[a]);
                }
            }
        }
        for (std::size_t r = 0; r < m; ++r) rhs[k + r] = d[r];

        double ridge = 1e-10 * hmax;
        Vector sol;
        for (int attempt = 0; attempt < 12; ++attempt) {
            for (std::size_t a = 0; a < k; ++a) {
                kkt(a, a) = h(free_vars[a], free_vars[a]) + ridge;
            }
            Lu lu(kkt);
            if (!lu.singular()) {
                sol = lu.solve(rhs);
                break;
            }
            ridge *= 100.0;
        }
        if (sol.empty()) {
            if (seeded) {
                // A seed that pins an equality row's entire support
                // leaves the KKT system structurally singular (a
                // multiplier row with no free columns).  Treat it like
                // any other inconsistent seed: fall back to cold.
                std::fill(fixed_zero.begin(), fixed_zero.end(), 0);
                seeded = false;
                continue;
            }
            throw std::runtime_error(
                "solve_eq_qp_nonneg: singular KKT system");
        }

        // Fix the negative coordinates at zero and re-solve; the
        // threshold scales with the iterate so numerically-zero
        // coordinates of large-magnitude solutions (loads of order
        // 1e9) are not mislabeled negative.
        double xmax = 0.0;
        for (std::size_t a = 0; a < k; ++a) {
            xmax = std::max(xmax, std::abs(sol[a]));
        }
        const double neg_tol = 1e-9 * std::max(1.0, xmax);
        bool any_negative = false;
        for (std::size_t a = 0; a < k; ++a) {
            if (sol[a] < -neg_tol) {
                fixed_zero[free_vars[a]] = 1;
                any_negative = true;
            }
        }
        if (any_negative) continue;

        // Primal feasible: provisional solution on the free set.
        result.x.assign(n, 0.0);
        for (std::size_t a = 0; a < k; ++a) {
            result.x[free_vars[a]] = std::max(0.0, sol[a]);
        }
        result.converged = true;

        // KKT verification: at the optimum the multiplier of every
        // pinned coordinate, mu_j = (H x - f + E' nu)_j, must be
        // non-negative (nu comes out of the same KKT solve).  A pinned
        // coordinate with mu_j < 0 would lower the objective if freed.
        const double mu_tol = 1e-9 * std::max({1.0, fmax, hmax * xmax});
        std::size_t worst = n;
        double worst_mu = -mu_tol;
        std::vector<std::size_t> violators;
        // E' nu gathered once over the nonzeros when the CSR form is
        // available (the dense fallback walks column j per coordinate).
        Vector etnu;
        if (eop != nullptr && m > 0) {
            const Vector nu(sol.begin() + static_cast<std::ptrdiff_t>(k),
                            sol.begin() + static_cast<std::ptrdiff_t>(k + m));
            etnu = eop->multiply_transpose(nu);
        }
        for (std::size_t j = 0; j < n; ++j) {
            if (!fixed_zero[j]) continue;
            double mu = -f[j];
            const double* __restrict hrow = h.row_data(j);
            for (std::size_t a = 0; a < k; ++a) {
                mu += hrow[free_vars[a]] * sol[a];
            }
            if (eop != nullptr) {
                if (m > 0) mu += etnu[j];
            } else {
                for (std::size_t r = 0; r < m; ++r) {
                    mu += e(r, j) * sol[k + r];
                }
            }
            if (mu < -mu_tol) violators.push_back(j);
            if (mu < worst_mu) {
                worst_mu = mu;
                worst = j;
            }
        }
        if (worst == n) {
            result.warm_accepted = seeded;
            break;
        }
        if (seeded && seed_repairs >= kMaxSeedRepairs) {
            // The seed pinned several coordinates the optimum needs
            // free: it describes a different active set entirely.  Fall
            // back to the cold path wholesale instead of unwinding one
            // coordinate at a time.
            std::fill(fixed_zero.begin(), fixed_zero.end(), 0);
            seeded = false;
            result.converged = false;
            continue;
        }
        if (!seeded && releases >= n) {
            // Anti-cycling cap: keep the primal-feasible point but do
            // not claim KKT optimality — a violating multiplier was
            // just found.
            result.converged = false;
            break;
        }
        // Release infeasible pinned coordinates and re-solve.  A seeded
        // run repairs its mildly drifted active set by freeing every
        // violator at once (usually one extra small KKT solve — far
        // cheaper than a cold restart whose first solve runs on the
        // full free set); the cold path releases one coordinate at a
        // time, the textbook anti-cycling discipline.
        if (seeded) {
            ++seed_repairs;
            for (std::size_t j : violators) fixed_zero[j] = 0;
        } else {
            ++releases;
            fixed_zero[worst] = 0;
        }
        result.converged = false;
    }

    result.active.assign(fixed_zero.begin(), fixed_zero.end());
    if (m > 0) {
        Vector ex = eop != nullptr ? eop->multiply(result.x)
                                   : gemv(e, result.x);
        result.equality_violation = nrm_inf(sub(ex, d));
    }
    return result;
}

}  // namespace tme::linalg
