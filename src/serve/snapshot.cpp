#include "serve/snapshot.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "obs/report.hpp"

namespace tme::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_u64(std::uint64_t& h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= kFnvPrime;
    }
}

void fnv_double(std::uint64_t& h, double d) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    fnv_u64(h, bits);
}

std::string hex_u64(std::uint64_t v) {
    char buf[19];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

}  // namespace

EstimateSnapshot EstimateSnapshot::from_window(
    const engine::WindowResult& window) {
    EstimateSnapshot snap;
    snap.window_start_sample_ = window.window_start_sample;
    snap.window_end_sample_ = window.window_end_sample;
    snap.window_size_ = window.window_size;
    snap.epoch_fingerprint_ = window.epoch_fingerprint;
    snap.window_seconds_ = window.seconds;
    snap.methods_.reserve(window.runs.size());
    for (const engine::MethodRun& run : window.runs) {
        MethodEstimate m;
        m.method = run.method;
        m.estimate = run.estimate;
        m.mre = run.mre;
        m.seconds = run.seconds;
        m.warm_started = run.warm_started;
        m.warm_accepted = run.warm_accepted;
        m.solver = run.solver;
        m.quality = run.quality;
        m.used_fallback = run.used_fallback;
        m.fallback_method = run.fallback_method;
        m.stale_age = run.stale_age;
        snap.methods_.push_back(std::move(m));
    }
    return snap;
}

const MethodEstimate* EstimateSnapshot::find(engine::Method m) const {
    for (const MethodEstimate& me : methods_) {
        if (me.method == m) return &me;
    }
    return nullptr;
}

obs::SolverCounters EstimateSnapshot::solver_totals() const {
    obs::SolverCounters total;
    for (const MethodEstimate& me : methods_) total.add(me.solver);
    return total;
}

void EstimateSnapshot::freeze(std::uint64_t version) {
    version_ = version;
    checksum_ = compute_checksum();
}

std::uint64_t EstimateSnapshot::compute_checksum() const {
    std::uint64_t h = kFnvOffset;
    fnv_u64(h, version_);
    fnv_u64(h, window_start_sample_);
    fnv_u64(h, window_end_sample_);
    fnv_u64(h, window_size_);
    fnv_u64(h, epoch_fingerprint_);
    fnv_double(h, window_seconds_);
    fnv_u64(h, methods_.size());
    for (const MethodEstimate& me : methods_) {
        fnv_u64(h, static_cast<std::uint64_t>(me.method));
        fnv_double(h, me.mre);
        fnv_double(h, me.seconds);
        fnv_u64(h, (me.warm_started ? 1u : 0u) |
                       (me.warm_accepted ? 2u : 0u) |
                       (me.used_fallback ? 4u : 0u));
        fnv_u64(h, static_cast<std::uint64_t>(me.quality));
        fnv_u64(h, static_cast<std::uint64_t>(me.fallback_method));
        fnv_u64(h, me.stale_age);
        fnv_u64(h, me.estimate.size());
        for (double v : me.estimate) fnv_double(h, v);
    }
    return h;
}

obs::Json EstimateSnapshot::to_json(bool include_estimates) const {
    obs::Json doc = obs::Json::object();
    doc.set("version", version_);
    doc.set("window_start_sample", window_start_sample_);
    doc.set("window_end_sample", window_end_sample_);
    doc.set("window_size", window_size_);
    doc.set("epoch_fingerprint", hex_u64(epoch_fingerprint_));
    doc.set("checksum", hex_u64(checksum_));
    doc.set("window_seconds", window_seconds_);
    doc.set("pairs", pair_count());
    obs::Json methods = obs::Json::object();
    for (const MethodEstimate& me : methods_) {
        obs::Json m = obs::Json::object();
        m.set("pairs", me.estimate.size());
        // NaN (unscored window) is not representable in JSON; the field
        // is simply absent, and the round-trip test pins that.
        if (!std::isnan(me.mre)) m.set("mre", me.mre);
        m.set("seconds", me.seconds);
        m.set("warm_started", me.warm_started);
        m.set("warm_accepted", me.warm_accepted);
        m.set("quality", engine::estimate_quality_name(me.quality));
        if (me.used_fallback) {
            m.set("fallback_method",
                  engine::method_name(me.fallback_method));
        }
        if (me.quality == engine::EstimateQuality::stale) {
            m.set("stale_age", me.stale_age);
        }
        m.set("solver", obs::counters_to_json(me.solver));
        if (include_estimates) {
            obs::Json est = obs::Json::array();
            for (double v : me.estimate) est.push_back(v);
            m.set("estimate", std::move(est));
        }
        methods.set(engine::method_name(me.method), std::move(m));
    }
    doc.set("methods", std::move(methods));
    return doc;
}

}  // namespace tme::serve
