// Golden round trip for snapshot export: EstimateSnapshot::to_json()
// dumped and re-parsed with obs::Json::parse reproduces the version,
// the 64-bit epoch fingerprint (hex string — it may exceed int64),
// per-method MRE and the solver-counter telemetry exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <optional>
#include <string>

#include "serve/store.hpp"

namespace tme::serve {
namespace {

std::uint64_t parse_hex(const obs::Json& doc, const char* key) {
    const obs::Json* field = doc.find(key);
    EXPECT_NE(field, nullptr) << key;
    if (field == nullptr || !field->is_string()) return 0;
    return std::strtoull(field->as_string().c_str(), nullptr, 16);
}

EstimateSnapshot published_snapshot(EstimateStore& store) {
    engine::WindowResult window;
    window.window_start_sample = 42;
    window.window_end_sample = 53;
    window.window_size = 12;
    // High bit set: only the hex-string export survives obs::Json's
    // int64 integers.
    window.epoch_fingerprint = 0xDEADBEEFCAFEBABEull;
    window.seconds = 0.125;

    engine::MethodRun gravity;
    gravity.method = engine::Method::gravity;
    gravity.estimate = {0.1, 1.0 / 3.0, 1e-17, 12345.678, 0.0};
    gravity.mre = 0.23456789012345678;  // full double precision
    gravity.seconds = 0.001953125;
    window.runs.push_back(gravity);

    engine::MethodRun entropy;
    entropy.method = engine::Method::entropy;
    entropy.estimate = {1.0, 2.0, 3.0, 4.0, 5.0};
    entropy.mre = std::numeric_limits<double>::quiet_NaN();  // unscored
    entropy.seconds = 0.25;
    entropy.warm_started = true;
    entropy.warm_accepted = true;
    entropy.solver.entropy_iterations = 17;
    entropy.solver.entropy_armijo_probes = 5;
    window.runs.push_back(entropy);

    store.publish(EstimateSnapshot::from_window(window));
    Reader reader(store);
    return *reader.latest().value.snapshot;
}

TEST(ServeSnapshotJson, RoundTripReproducesEveryFieldExactly) {
    EstimateStore store;
    const EstimateSnapshot snap = published_snapshot(store);
    ASSERT_EQ(snap.version(), 1u);
    ASSERT_TRUE(snap.consistent());

    const std::string text = snap.to_json(true).dump(2);
    const std::optional<obs::Json> parsed = obs::Json::parse(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    const obs::Json& doc = *parsed;

    EXPECT_EQ(doc.find("version")->as_int(), 1);
    EXPECT_EQ(doc.find("window_start_sample")->as_int(), 42);
    EXPECT_EQ(doc.find("window_end_sample")->as_int(), 53);
    EXPECT_EQ(doc.find("window_size")->as_int(), 12);
    EXPECT_EQ(parse_hex(doc, "epoch_fingerprint"),
              0xDEADBEEFCAFEBABEull);
    EXPECT_EQ(parse_hex(doc, "checksum"), snap.checksum());
    EXPECT_EQ(doc.find("window_seconds")->as_double(), 0.125);
    EXPECT_EQ(doc.find("pairs")->as_int(), 5);

    const obs::Json* methods = doc.find("methods");
    ASSERT_NE(methods, nullptr);
    ASSERT_EQ(methods->size(), 2u);

    const obs::Json* gravity = methods->find("gravity");
    ASSERT_NE(gravity, nullptr);
    EXPECT_EQ(gravity->find("mre")->as_double(),
              0.23456789012345678);  // exact: shortest-round-trip dump
    EXPECT_EQ(gravity->find("seconds")->as_double(), 0.001953125);
    EXPECT_FALSE(gravity->find("warm_started")->as_bool());
    const obs::Json* est = gravity->find("estimate");
    ASSERT_NE(est, nullptr);
    ASSERT_EQ(est->size(), 5u);
    EXPECT_EQ(est->items()[0].as_double(), 0.1);
    EXPECT_EQ(est->items()[1].as_double(), 1.0 / 3.0);
    EXPECT_EQ(est->items()[2].as_double(), 1e-17);
    EXPECT_EQ(est->items()[3].as_double(), 12345.678);
    EXPECT_EQ(est->items()[4].as_double(), 0.0);

    const obs::Json* entropy = methods->find("entropy");
    ASSERT_NE(entropy, nullptr);
    // NaN MRE (unscored window) is not representable in JSON: the
    // field must be absent, not null/0.
    EXPECT_EQ(entropy->find("mre"), nullptr);
    EXPECT_TRUE(entropy->find("warm_started")->as_bool());
    EXPECT_TRUE(entropy->find("warm_accepted")->as_bool());
    const obs::Json* solver = entropy->find("solver");
    ASSERT_NE(solver, nullptr);
    EXPECT_EQ(solver->find("entropy_iterations")->as_int(), 17);
    EXPECT_EQ(solver->find("entropy_armijo_probes")->as_int(), 5);
    // Zero counters are omitted by counters_to_json.
    EXPECT_EQ(solver->find("qp_active_set_rounds"), nullptr);
}

TEST(ServeSnapshotJson, MetadataOnlyExportOmitsEstimates) {
    EstimateStore store;
    const EstimateSnapshot snap = published_snapshot(store);
    const std::string text = snap.to_json(false).dump();
    const std::optional<obs::Json> parsed = obs::Json::parse(text);
    ASSERT_TRUE(parsed.has_value());
    const obs::Json* gravity = parsed->find("methods")->find("gravity");
    ASSERT_NE(gravity, nullptr);
    EXPECT_EQ(gravity->find("estimate"), nullptr);
    EXPECT_EQ(gravity->find("pairs")->as_int(), 5);
}

TEST(ServeSnapshotJson, StoreTelemetryExports) {
    EstimateStore store;
    (void)published_snapshot(store);
    const std::optional<obs::Json> doc =
        obs::Json::parse(store.to_json().dump(2));
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("head_version")->as_int(), 1);
    EXPECT_EQ(doc->find("writer_waits")->as_int(), 0);
    EXPECT_EQ(doc->find("publish_latency")->find("count")->as_int(), 1);
}

}  // namespace
}  // namespace tme::serve
