#include "engine/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <utility>

#include "engine/scheduler.hpp"
#include "obs/report.hpp"

namespace tme::engine {

void record_run_quality(EngineMetrics& metrics, const MethodRun& run,
                        std::size_t window_end_sample) {
    MethodStats& stats = metrics.methods[run.method];
    if (run.solve_outcome == SolveOutcome::budget_exhausted) {
        ++stats.budget_exhausted_runs;
        ++metrics.budget_exhausted_runs;
    }
    if (run.used_fallback) ++stats.fallback_runs;
    switch (run.quality) {
        case EstimateQuality::exact:
            return;
        case EstimateQuality::degraded:
            ++stats.degraded_runs;
            ++metrics.degraded_runs;
            break;
        case EstimateQuality::stale:
            ++stats.stale_runs;
            ++metrics.stale_runs;
            break;
        case EstimateQuality::failed:
            ++stats.failed_runs;
            ++metrics.failed_runs;
            break;
    }
    DegradationRecord record;
    record.window_end_sample = window_end_sample;
    record.method = run.method;
    record.quality = run.quality;
    record.fallback_method = run.fallback_method;
    record.used_fallback = run.used_fallback;
    record.stale_age = run.stale_age;
    record.reason = run.degradation_reason;
    metrics.degradation.push(std::move(record));
}

std::string EngineMetrics::summary() const {
    char line[320];
    std::string out;
    std::snprintf(line, sizeof(line),
                  "samples=%zu gaps=%zu windows=%zu flushes=%zu "
                  "epoch_changes=%zu\n",
                  samples_ingested.load(), gap_samples.load(),
                  windows_run.load(), window_flushes.load(),
                  epoch_changes.load());
    out += line;
    std::snprintf(line, sizeof(line),
                  "epoch cache: hit rate %.3f (%zu hits, %zu misses, "
                  "%zu evictions, %zu collisions)\n",
                  cache_hit_rate(), cache_hits.load(), cache_misses.load(),
                  cache_evictions.load(), cache_collisions.load());
    out += line;
    const obs::HistogramSnapshot window = window_latency.snapshot();
    std::snprintf(line, sizeof(line),
                  "latency: total %.3fs, last window %.2fms, "
                  "p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
                  total_seconds.load(), last_window_seconds.load() * 1e3,
                  window.p50() * 1e3, window.p95() * 1e3,
                  window.p99() * 1e3, window.max_seconds() * 1e3);
    out += line;
    const std::size_t total_degraded = degraded_runs.load() +
                                       stale_runs.load() + failed_runs.load();
    if (total_degraded > 0 || corrupt_samples.load() > 0 ||
        routing_faults.load() > 0) {
        std::snprintf(line, sizeof(line),
                      "degradation: degraded=%zu stale=%zu failed=%zu "
                      "budget_exhausted=%zu corrupt_samples=%zu "
                      "routing_faults=%zu\n",
                      degraded_runs.load(), stale_runs.load(),
                      failed_runs.load(), budget_exhausted_runs.load(),
                      corrupt_samples.load(), routing_faults.load());
        out += line;
    }
    for (const auto& [method, stats] : methods) {
        const obs::HistogramSnapshot hist = stats.latency.snapshot();
        std::snprintf(line, sizeof(line),
                      "  %-9s runs=%zu warm=%zu/%zu mean=%.2fms "
                      "last=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms "
                      "max=%.2fms",
                      method_name(method), stats.runs.load(),
                      stats.warm_accepted_runs.load(),
                      stats.warm_runs.load(), stats.mean_seconds() * 1e3,
                      stats.last_seconds.load() * 1e3, hist.p50() * 1e3,
                      hist.p95() * 1e3, hist.p99() * 1e3,
                      stats.max_seconds.load() * 1e3);
        out += line;
        if (stats.mre_count.load() > 0) {
            std::snprintf(line, sizeof(line), " mean_mre=%.4f last_mre=%.4f",
                          stats.mean_mre(), stats.last_mre.load());
            out += line;
        }
        const obs::SolverCounters solver = stats.solver.snapshot();
        if (solver.any()) {
            out += " iters=";
            out += obs::counters_to_json(solver).dump();
        }
        if (stats.degraded_runs.load() > 0 || stats.stale_runs.load() > 0 ||
            stats.failed_runs.load() > 0) {
            std::snprintf(line, sizeof(line),
                          " degraded=%zu stale=%zu failed=%zu fallback=%zu",
                          stats.degraded_runs.load(), stats.stale_runs.load(),
                          stats.failed_runs.load(),
                          stats.fallback_runs.load());
            out += line;
        }
        out += '\n';
    }
    return out;
}

obs::Json EngineMetrics::to_json() const {
    obs::Json j = obs::Json::object();
    j.set("samples_ingested",
          static_cast<long long>(samples_ingested.load()));
    j.set("gap_samples", static_cast<long long>(gap_samples.load()));
    j.set("windows_run", static_cast<long long>(windows_run.load()));
    j.set("window_flushes", static_cast<long long>(window_flushes.load()));
    j.set("epoch_changes", static_cast<long long>(epoch_changes.load()));

    obs::Json cache = obs::Json::object();
    cache.set("hits", static_cast<long long>(cache_hits.load()));
    cache.set("misses", static_cast<long long>(cache_misses.load()));
    cache.set("evictions", static_cast<long long>(cache_evictions.load()));
    cache.set("collisions",
              static_cast<long long>(cache_collisions.load()));
    cache.set("hit_rate", cache_hit_rate());
    j.set("epoch_cache", std::move(cache));

    j.set("total_seconds", total_seconds.load());
    j.set("last_window_seconds", last_window_seconds.load());
    j.set("window_latency",
          obs::histogram_to_json(window_latency.snapshot()));
    j.set("ingest_wait", obs::histogram_to_json(ingest_wait.snapshot()));
    j.set("backpressure_wait",
          obs::histogram_to_json(backpressure_wait.snapshot()));
    j.set("epoch_build_latency",
          obs::histogram_to_json(epoch_build_latency.snapshot()));
    j.set("mre_skipped_runs",
          static_cast<long long>(mre_skipped_runs.load()));

    obs::Json degr = obs::Json::object();
    degr.set("degraded_runs", static_cast<long long>(degraded_runs.load()));
    degr.set("stale_runs", static_cast<long long>(stale_runs.load()));
    degr.set("failed_runs", static_cast<long long>(failed_runs.load()));
    degr.set("budget_exhausted_runs",
             static_cast<long long>(budget_exhausted_runs.load()));
    degr.set("corrupt_samples",
             static_cast<long long>(corrupt_samples.load()));
    degr.set("routing_faults", static_cast<long long>(routing_faults.load()));
    degr.set("records_dropped",
             static_cast<long long>(degradation.dropped()));
    obs::Json records = obs::Json::array();
    for (const DegradationRecord& record : degradation.snapshot()) {
        obs::Json r = obs::Json::object();
        r.set("window_end_sample",
              static_cast<long long>(record.window_end_sample));
        r.set("method", method_name(record.method));
        r.set("quality", estimate_quality_name(record.quality));
        if (record.used_fallback) {
            r.set("fallback_method", method_name(record.fallback_method));
        }
        if (record.quality == EstimateQuality::stale) {
            r.set("stale_age", static_cast<long long>(record.stale_age));
        }
        if (!record.reason.empty()) {
            r.set("reason", record.reason);
        }
        records.push_back(std::move(r));
    }
    degr.set("records", std::move(records));
    j.set("degradation", std::move(degr));

    obs::Json per_method = obs::Json::object();
    for (const auto& [method, stats] : methods) {
        obs::Json m = obs::Json::object();
        m.set("runs", static_cast<long long>(stats.runs.load()));
        m.set("warm_runs", static_cast<long long>(stats.warm_runs.load()));
        m.set("warm_accepted_runs",
              static_cast<long long>(stats.warm_accepted_runs.load()));
        m.set("mean_seconds", stats.mean_seconds());
        m.set("last_seconds", stats.last_seconds.load());
        m.set("max_seconds", stats.max_seconds.load());
        m.set("latency", obs::histogram_to_json(stats.latency.snapshot()));
        const obs::SolverCounters solver = stats.solver.snapshot();
        if (solver.any()) {
            m.set("solver", obs::counters_to_json(solver));
        }
        if (stats.mre_count.load() > 0) {
            m.set("mean_mre", stats.mean_mre());
            m.set("last_mre", stats.last_mre.load());
        }
        m.set("degraded_runs",
              static_cast<long long>(stats.degraded_runs.load()));
        m.set("stale_runs", static_cast<long long>(stats.stale_runs.load()));
        m.set("failed_runs",
              static_cast<long long>(stats.failed_runs.load()));
        m.set("fallback_runs",
              static_cast<long long>(stats.fallback_runs.load()));
        m.set("budget_exhausted_runs",
              static_cast<long long>(stats.budget_exhausted_runs.load()));
        per_method.set(method_name(method), std::move(m));
    }
    j.set("methods", std::move(per_method));
    return j;
}

}  // namespace tme::engine
