// Engineering micro-benchmarks (google-benchmark): the numerical kernels
// behind the reproduction.  Not a paper figure — this quantifies the
// cost of each method so the per-figure benches' runtimes are explained,
// and doubles as an ablation of the warm-start and Gram-form choices
// called out in DESIGN.md.
#include <benchmark/benchmark.h>

#include <random>

#include "topology/builders.hpp"
#include "core/bayesian.hpp"
#include "core/entropy.hpp"
#include "core/fanout.hpp"
#include "core/gravity.hpp"
#include "core/vardi.hpp"
#include "core/wcb.hpp"
#include "linalg/nnls.hpp"
#include "linalg/simplex.hpp"
#include "routing/routing_matrix.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace tme;

const scenario::Scenario& europe() {
    static const scenario::Scenario sc =
        scenario::make_scenario(scenario::Network::europe);
    return sc;
}

void BM_CspfMeshEurope(benchmark::State& state) {
    const topology::Topology topo = topology::europe_backbone();
    std::vector<double> bw(topo.pair_count(), 25.0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(routing::build_lsp_mesh(topo, bw));
    }
}
BENCHMARK(BM_CspfMeshEurope);

void BM_RoutingMatrixUs(benchmark::State& state) {
    const topology::Topology topo = topology::us_backbone();
    for (auto _ : state) {
        benchmark::DoNotOptimize(routing::igp_routing_matrix(topo));
    }
}
BENCHMARK(BM_RoutingMatrixUs);

void BM_GravityEstimate(benchmark::State& state) {
    const core::SnapshotProblem snap = europe().busy_snapshot();
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::gravity_estimate(snap));
    }
}
BENCHMARK(BM_GravityEstimate);

void BM_BayesianEurope(benchmark::State& state) {
    const core::SnapshotProblem snap = europe().busy_snapshot();
    const linalg::Vector prior = core::gravity_estimate(snap);
    core::BayesianOptions options;
    options.regularization = 1e4;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::bayesian_estimate(snap, prior, options));
    }
}
BENCHMARK(BM_BayesianEurope);

void BM_EntropyEurope(benchmark::State& state) {
    const core::SnapshotProblem snap = europe().busy_snapshot();
    const linalg::Vector prior = core::gravity_estimate(snap);
    core::EntropyOptions options;
    options.regularization = 1e3;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::entropy_estimate(snap, prior, options));
    }
}
BENCHMARK(BM_EntropyEurope);

void BM_VardiEurope(benchmark::State& state) {
    const core::SeriesProblem series = europe().busy_series();
    core::VardiOptions options;
    options.second_moment_weight = 1.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::vardi_estimate(series, options));
    }
}
BENCHMARK(BM_VardiEurope);

void BM_FanoutEurope(benchmark::State& state) {
    const core::SeriesProblem series = europe().busy_series();
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::fanout_estimate(series));
    }
}
BENCHMARK(BM_FanoutEurope);

// Ablation: worst-case bounds with and without LP warm starting.
void BM_WcbWarmStart(benchmark::State& state) {
    const core::SnapshotProblem snap = europe().busy_snapshot();
    core::WcbOptions options;
    options.warm_start = state.range(0) != 0;
    std::vector<std::size_t> pairs;  // first 12 pairs keep runtime sane
    for (std::size_t p = 0; p < 12; ++p) pairs.push_back(p);
    std::size_t iterations = 0;
    for (auto _ : state) {
        const core::WcbResult r =
            core::worst_case_bounds(snap, options, pairs);
        iterations += r.simplex_iterations;
        benchmark::DoNotOptimize(r);
    }
    state.counters["simplex_iters"] = static_cast<double>(iterations);
}
BENCHMARK(BM_WcbWarmStart)->Arg(0)->Arg(1);

// Ablation: NNLS via explicit matrix vs Gram form (the Vardi second-
// moment system makes the Gram form mandatory at scale).
void BM_NnlsExplicit(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    linalg::Matrix a(2 * n, n);
    std::mt19937_64 rng(1);
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < a.cols(); ++j) a(i, j) = dist(rng);
    }
    linalg::Vector b(2 * n);
    for (double& v : b) v = dist(rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(linalg::nnls(a, b));
    }
}
BENCHMARK(BM_NnlsExplicit)->Arg(64)->Arg(128)->Arg(256);

void BM_NnlsGram(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    linalg::Matrix a(2 * n, n);
    std::mt19937_64 rng(1);
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < a.cols(); ++j) a(i, j) = dist(rng);
    }
    linalg::Vector b(2 * n);
    for (double& v : b) v = dist(rng);
    const linalg::Matrix g = linalg::gram(a);
    const linalg::Vector atb = linalg::gemv_transpose(a, b);
    for (auto _ : state) {
        benchmark::DoNotOptimize(linalg::nnls_gram(g, atb));
    }
}
BENCHMARK(BM_NnlsGram)->Arg(64)->Arg(128)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
