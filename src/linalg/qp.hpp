// Quadratic programming utilities.
//
// The fanout estimator (paper Section 4.2.4) solves
//
//     minimize    sum_k || R S[k] a - t[k] ||^2
//     subject to  sum_m a_nm = 1 for every source n,   a >= 0
//
// i.e. an equality-constrained QP with non-negativity.  Two solvers are
// provided:
//
//  * solve_eq_qp        — KKT system solve, equality constraints only
//                         (used when the non-negativity constraint is
//                         known to be inactive, and inside tests);
//  * solve_eq_qp_nonneg — active-set iteration on the non-negativity
//                         constraints over exact KKT solves of the
//                         equality-constrained subproblem, honouring
//                         both constraint families.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/nnls.hpp"
#include "linalg/sparse.hpp"

namespace tme::linalg {

/// Minimizes (1/2) x'Hx - f'x  subject to  E x = d.
/// H must be symmetric positive semi-definite on the nullspace of E.
/// Solved via the KKT system [H E'; E 0][x; nu] = [f; d] with LU.
/// Throws std::runtime_error if the KKT matrix is singular.
Vector solve_eq_qp(const Matrix& h, const Vector& f, const Matrix& e,
                   const Vector& d);

struct EqQpNonnegOptions {
    /// Optional active-set warm start: a prior primal point (typically
    /// the previous window's solution of a slowly drifting problem
    /// sequence).  Coordinates that are <= 0 in this vector seed the
    /// active set — they start pinned at zero, so the first KKT solve
    /// already works on the reduced free set.  The seed is *verified*:
    /// once the seeded iteration reaches primal feasibility, the
    /// Lagrange multipliers of every pinned coordinate are checked.  A
    /// mildly drifted seed (pinned coordinates the optimum needs free)
    /// is repaired by releasing every violator at once and re-solving;
    /// a seed that keeps failing verification falls back to the cold
    /// path wholesale.  Either way a warm solve returns the same
    /// minimizer as a cold solve.  Size must equal the number of
    /// variables.  Not owned; must outlive the call.
    const Vector* warm_start = nullptr;
    /// Optional CSR form of E (must hold exactly the same coefficients
    /// as the dense `e` argument).  The per-round seed support checks,
    /// the KKT assembly of the constraint blocks, the pinned-multiplier
    /// verification and the final equality-violation evaluation then
    /// iterate E's nonzeros instead of dense m x n sweeps — on the
    /// fanout QP E has one nonzero per column, so this turns O(m * n)
    /// passes into O(n) ones.  With one nonzero per column the produced
    /// iterates are bit-for-bit the dense path's (the skipped terms are
    /// exact zeros); for general E the multiplier sums regroup and the
    /// two paths agree to solver precision.  Not owned; must outlive
    /// the call.
    const SparseMatrix* equality_operator = nullptr;
};

struct EqQpNonnegResult {
    Vector x;
    /// Final active set: active[j] != 0 iff x_j is pinned at zero.
    /// Feed back into EqQpNonnegOptions::warm_start (via x itself) to
    /// warm-start the next solve of a nearby problem.
    std::vector<std::uint8_t> active;
    double equality_violation = 0.0;  ///< ||E x - d||_inf after solve
    std::size_t iterations = 0;       ///< KKT solves performed
    bool converged = false;
    /// True when a warm-start seed was supplied, passed KKT
    /// verification, and shaped the returned solution (no cold
    /// fall-back happened).
    bool warm_accepted = false;
};

/// Minimizes (1/2) x'Hx - f'x  subject to  E x = d,  x >= 0, via an
/// active set on the non-negativity constraints with an exact KKT solve
/// of the equality-constrained subproblem at each step.  At primal
/// feasibility the multipliers of the pinned coordinates are verified
/// and infeasible ones are released, so the returned point is the KKT
/// point of the (ridge-regularized) problem — warm and cold runs agree
/// to solver precision.  All tolerances are scale-relative (derived
/// from diag(H) and the iterate magnitude), so the solver behaves
/// identically for loads of order 1 and of order 1e9.
EqQpNonnegResult solve_eq_qp_nonneg(const Matrix& h, const Vector& f,
                                    const Matrix& e, const Vector& d,
                                    const EqQpNonnegOptions& options = {});

}  // namespace tme::linalg
