#include "linalg/qr.hpp"

#include <gtest/gtest.h>

#include <random>

namespace tme::linalg {
namespace {

TEST(Qr, ExactSquareSolve) {
    Matrix a{{2.0, 0.0}, {0.0, 4.0}};
    const Vector x = lstsq(a, {2.0, 8.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Qr, OverdeterminedLeastSquares) {
    // Fit y = a + b t through (0,1), (1,3), (2,5): exact line 1 + 2t.
    Matrix a{{1.0, 0.0}, {1.0, 1.0}, {1.0, 2.0}};
    const Vector x = lstsq(a, {1.0, 3.0, 5.0});
    EXPECT_NEAR(x[0], 1.0, 1e-10);
    EXPECT_NEAR(x[1], 2.0, 1e-10);
}

TEST(Qr, ResidualOrthogonalToColumns) {
    std::mt19937_64 rng(3);
    std::uniform_real_distribution<double> dist(-2.0, 2.0);
    Matrix a(10, 4);
    Vector b(10);
    for (std::size_t i = 0; i < 10; ++i) {
        b[i] = dist(rng);
        for (std::size_t j = 0; j < 4; ++j) a(i, j) = dist(rng);
    }
    const Vector x = lstsq(a, b);
    const Vector r = sub(gemv(a, x), b);
    const Vector atr = gemv_transpose(a, r);
    EXPECT_LT(nrm_inf(atr), 1e-9);
}

TEST(Qr, ThrowsOnWideMatrix) {
    EXPECT_THROW(Qr(Matrix(2, 3)), std::invalid_argument);
}

TEST(Qr, RankOfFullRank) {
    Matrix a{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
    EXPECT_EQ(Qr(a).rank(), 2u);
}

TEST(Qr, RankDeficientDetected) {
    // Second column is 2x the first.
    Matrix a{{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}};
    EXPECT_EQ(Qr(a).rank(), 1u);
}

TEST(Qr, QTransposePreservesNorm) {
    std::mt19937_64 rng(9);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    Matrix a(8, 8);
    Vector b(8);
    for (std::size_t i = 0; i < 8; ++i) {
        b[i] = dist(rng);
        for (std::size_t j = 0; j < 8; ++j) a(i, j) = dist(rng);
    }
    Qr qr(a);
    EXPECT_NEAR(nrm2(qr.q_transpose_mul(b)), nrm2(b), 1e-10);
}

class QrProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(QrProperty, NormalEquationsHold) {
    const std::size_t m = 6 + GetParam() % 10;
    const std::size_t n = 2 + GetParam() % 5;
    std::mt19937_64 rng(GetParam());
    std::uniform_real_distribution<double> dist(-4.0, 4.0);
    Matrix a(m, n);
    Vector b(m);
    for (std::size_t i = 0; i < m; ++i) {
        b[i] = dist(rng);
        for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
    }
    const Vector x = lstsq(a, b);
    // A'(Ax - b) = 0 at the least-squares solution.
    const Vector grad = gemv_transpose(a, sub(gemv(a, x), b));
    EXPECT_LT(nrm_inf(grad), 1e-8 * (1.0 + nrm2(b)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, QrProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace tme::linalg
