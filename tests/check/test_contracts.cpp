// Contract-layer tests: each validator throws a typed
// check::ContractViolation on corrupted input, the macros respect the
// compile-time gate and the runtime arm switch, and the wiring into the
// estimation path catches injected NaNs at the boundary where they
// enter — not three solvers downstream.  (The zero-overhead /
// bitwise-identity property of the compiled-out configuration is gated
// in bench_perf_solvers, which builds with TME_CONTRACTS=0.)
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "check/contract.hpp"
#include "check/validators.hpp"
#include "core/gravity.hpp"
#include "core/problem.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "linalg/nnls.hpp"
#include "linalg/sparse.hpp"
#include "core/test_helpers.hpp"

namespace {

using namespace tme;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(ContractMacro, ThrowsTypedViolationWhenCompiledIn) {
    if (!check::contracts_compiled()) {
        EXPECT_NO_THROW(TME_CONTRACT(1 == 2, "compiled out"));
        GTEST_SKIP() << "contracts compiled out in this configuration";
    }
    EXPECT_NO_THROW(TME_CONTRACT(1 == 1, "holds"));
    try {
        TME_CONTRACT(1 == 2, "one is not two");
        FAIL() << "TME_CONTRACT did not throw";
    } catch (const check::ContractViolation& e) {
        EXPECT_STREQ(e.condition(), "1 == 2");
        EXPECT_NE(std::string(e.what()).find("one is not two"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("contract violated"),
                  std::string::npos);
        EXPECT_GT(e.line(), 0);
    }
}

TEST(ContractMacro, SuspensionDisarmsEverySite) {
    if (!check::contracts_compiled()) {
        GTEST_SKIP() << "contracts compiled out in this configuration";
    }
    ASSERT_TRUE(check::contracts_armed());
    {
        check::ScopedContractSuspend off;
        EXPECT_FALSE(check::contracts_armed());
        EXPECT_NO_THROW(TME_CONTRACT(1 == 2, "suspended"));
        EXPECT_NO_THROW(TME_CONTRACT_CHECK(
            check::finite(linalg::Vector{kNaN}, "suspended vector")));
    }
    EXPECT_TRUE(check::contracts_armed());
}

TEST(Validators, CsrStructureCatchesEachCorruption) {
    // A well-formed 2x3 view passes.
    const std::vector<std::size_t> good_off = {0, 2, 3};
    const std::vector<std::size_t> good_col = {0, 2, 1};
    const std::vector<double> val = {1.0, 2.0, 3.0};
    linalg::CsrView v;
    v.rows = 2;
    v.cols = 3;
    v.offsets = good_off.data();
    v.col_index = good_col.data();
    v.values = val.data();
    EXPECT_NO_THROW(check::csr_structure(v, "good"));

    // Non-monotone row_ptr.
    const std::vector<std::size_t> bad_off = {0, 3, 2};
    v.offsets = bad_off.data();
    EXPECT_THROW(check::csr_structure(v, "rowptr"),
                 check::ContractViolation);
    v.offsets = good_off.data();

    // Out-of-bounds column index.
    const std::vector<std::size_t> oob_col = {0, 7, 1};
    v.col_index = oob_col.data();
    EXPECT_THROW(check::csr_structure(v, "oob"),
                 check::ContractViolation);

    // Unsorted (non-ascending) column indices within a row.
    const std::vector<std::size_t> unsorted_col = {2, 0, 1};
    v.col_index = unsorted_col.data();
    EXPECT_THROW(check::csr_structure(v, "unsorted"),
                 check::ContractViolation);

    // nnz bookkeeping mismatch is caught on the owning-matrix overload
    // (from_csr itself rejects it, which is the same boundary).
    EXPECT_THROW(linalg::SparseMatrix::from_csr(2, 3, {0, 2, 4},
                                                {0, 2, 1}, {1, 2, 3}),
                 std::invalid_argument);
}

TEST(Validators, FiniteCatchesNaNAndInf) {
    EXPECT_NO_THROW(check::finite(linalg::Vector{1.0, 0.0}, "ok"));
    EXPECT_THROW(check::finite(linalg::Vector{1.0, kNaN}, "nan vec"),
                 check::ContractViolation);
    EXPECT_THROW(
        check::finite(linalg::Vector{
                          1.0, std::numeric_limits<double>::infinity()},
                      "inf vec"),
        check::ContractViolation);

    linalg::Matrix m(2, 2, 1.0);
    EXPECT_NO_THROW(check::finite(m, "ok matrix"));
    m(1, 0) = kNaN;
    EXPECT_THROW(check::finite(m, "nan matrix"),
                 check::ContractViolation);
}

TEST(Validators, NonnegativityUsesScaleRelativeTolerance) {
    // Active-set noise at solver precision passes...
    linalg::Vector x{100.0, -1e-12, 3.0};
    EXPECT_NO_THROW(check::solver_boundary("solver", x, true));
    // ...a genuinely negative demand does not.
    x[1] = -1e-3;
    EXPECT_THROW(check::solver_boundary("solver", x, true),
                 check::ContractViolation);
}

TEST(Validators, SolverEntryBoundaryChecksShapeAndData) {
    linalg::Matrix gram(3, 3, 1.0);
    linalg::Vector atb{1.0, 2.0, 3.0};
    EXPECT_NO_THROW(check::solver_boundary("nnls", gram, atb));

    linalg::Vector short_rhs{1.0, 2.0};
    EXPECT_THROW(check::solver_boundary("nnls", gram, short_rhs),
                 check::ContractViolation);

    gram(2, 2) = kNaN;
    EXPECT_THROW(check::solver_boundary("nnls", gram, atb),
                 check::ContractViolation);
}

TEST(Wiring, InjectedNaNAtNnlsBoundaryThrows) {
    if (!check::contracts_dbg_compiled()) {
        GTEST_SKIP() << "DBG contracts compiled out";
    }
    linalg::Matrix gram(2, 2, 0.0);
    gram(0, 0) = 2.0;
    gram(1, 1) = 2.0;
    linalg::Vector atb{1.0, kNaN};
    EXPECT_THROW(linalg::nnls_gram(gram, atb),
                 check::ContractViolation);
}

TEST(Wiring, NaNCholeskyInputIsAContractNotAMisleadingPDError) {
    if (!check::contracts_dbg_compiled()) {
        GTEST_SKIP() << "DBG contracts compiled out";
    }
    // Rank-deficient-with-NaN input: without the contract this
    // surfaces as "matrix not positive definite", pointing the
    // investigation at conditioning instead of the corrupted input.
    linalg::Matrix a(2, 2, 0.0);
    a(0, 0) = 1.0;
    a(0, 1) = kNaN;
    a(1, 0) = kNaN;
    a(1, 1) = 1.0;
    EXPECT_THROW(linalg::Cholesky{a}, check::ContractViolation);
}

TEST(Wiring, EstimatorEntryBoundaryCatchesCorruptLoads) {
    if (!check::contracts_dbg_compiled()) {
        GTEST_SKIP() << "DBG contracts compiled out";
    }
    const core::testing::SmallNetwork net = core::testing::tiny_network();
    core::SnapshotProblem p = net.snapshot();
    p.loads[1] = kNaN;
    // Every estimator funnels through validate(); gravity stands in
    // for the suite.
    EXPECT_THROW(core::gravity_estimate(p), check::ContractViolation);

    // Suspended, the same call must not trip the contract (the NaN
    // then propagates into the estimate, which is exactly the
    // pre-contract behaviour the suspension exists to reproduce).
    check::ScopedContractSuspend off;
    EXPECT_NO_THROW(core::gravity_estimate(p));
}

}  // namespace
