// Table 2: best-MRE summary of all estimation methods on both networks.
#include "bench_common.hpp"

#include "core/bayesian.hpp"
#include "core/entropy.hpp"
#include "core/fanout.hpp"
#include "core/gravity.hpp"
#include "core/vardi.hpp"
#include "core/wcb.hpp"

namespace {

struct Row {
    const char* method;
    double europe;
    double usa;
    double paper_europe;
    double paper_usa;
};

double best_over(const std::vector<double>& values) {
    double best = 1e300;
    for (double v : values) best = std::min(best, v);
    return best;
}

}  // namespace

int main() {
    using namespace tme;
    bench::header(
        "Table 2 - performance comparison of all methods",
        "Table 2: best MRE per method; Bayesian/Entropy best, then "
        "fanout & WCB prior, gravity weak in US, Vardi worst",
        "same ordering: regularized < fanout/WCB-prior < gravity(US) "
        "and Vardi trails");

    std::vector<Row> rows;
    for (int net = 0; net < 2; ++net) {
        const scenario::Scenario& sc =
            net == 0 ? bench::europe() : bench::usa();
        const core::SnapshotProblem snap = sc.busy_snapshot();
        const linalg::Vector& truth = sc.busy_snapshot_demands();
        const double thr = core::threshold_for_coverage(truth, 0.9);
        auto mre = [&](const linalg::Vector& est) {
            return core::mean_relative_error(truth, est, thr);
        };
        const linalg::Vector grav = core::gravity_estimate(snap);
        const core::WcbResult wcb = core::worst_case_bounds(snap);

        // Regularization sweeps: report the best value, as the paper
        // does ("the best MRE values that we have been able to achieve").
        std::vector<double> bayes_grav;
        std::vector<double> bayes_wcb;
        std::vector<double> entropy_grav;
        for (double lam : {1e0, 1e2, 1e3, 1e4, 1e5}) {
            core::BayesianOptions bo;
            bo.regularization = lam;
            bayes_grav.push_back(mre(core::bayesian_estimate(snap, grav, bo)));
            bayes_wcb.push_back(
                mre(core::bayesian_estimate(snap, wcb.midpoint, bo)));
            core::EntropyOptions eo;
            eo.regularization = lam;
            entropy_grav.push_back(
                mre(core::entropy_estimate(snap, grav, eo)));
        }

        // Series methods evaluated against the busy-period mean.
        const core::SeriesProblem series = sc.busy_series();
        const linalg::Vector reference = sc.busy_mean_demands();
        const double thr_s = core::threshold_for_coverage(reference, 0.9);
        std::vector<double> fanout_mre;
        for (std::size_t window : {3u, 10u, 25u, 50u}) {
            const core::FanoutResult fr =
                core::fanout_estimate(sc.busy_series_window(window));
            fanout_mre.push_back(core::mean_relative_error(
                reference, fr.mean_demands, thr_s));
        }
        std::vector<double> vardi_mre;
        for (double w : {0.01, 1.0}) {
            core::VardiOptions vo;
            vo.second_moment_weight = w;
            vardi_mre.push_back(core::mean_relative_error(
                reference, core::vardi_estimate(series, vo).lambda, thr_s));
        }

        auto set = [&rows, net](const char* name, double v, double pe,
                                double pu) {
            if (net == 0) {
                rows.push_back({name, v, 0.0, pe, pu});
            } else {
                for (Row& r : rows) {
                    if (std::string(r.method) == name) r.usa = v;
                }
            }
        };
        set("Worst-case bound prior", mre(wcb.midpoint), 0.10, 0.39);
        set("Simple gravity prior", mre(grav), 0.26, 0.78);
        set("Entropy w. gravity prior", best_over(entropy_grav), 0.11,
            0.22);
        set("Bayes w. gravity prior", best_over(bayes_grav), 0.08, 0.25);
        set("Bayes w. WCB prior", best_over(bayes_wcb), 0.07, 0.23);
        set("Fanout", best_over(fanout_mre), 0.22, 0.40);
        set("Vardi", best_over(vardi_mre), 0.47, 0.98);
    }

    std::printf("\n%-26s %10s %10s   %10s %10s\n", "method", "Europe",
                "America", "paper(EU)", "paper(US)");
    for (const Row& r : rows) {
        std::printf("%-26s %10.3f %10.3f   %10.2f %10.2f\n", r.method,
                    r.europe, r.usa, r.paper_europe, r.paper_usa);
    }
    return 0;
}
