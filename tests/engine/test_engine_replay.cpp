// Engine integration: full-day scenario replays, multi-threaded
// scheduling, mid-day route changes (stale-cache proof), and telemetry
// ingestion with lost polls.
#include "engine/replay.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/gravity.hpp"
#include "core/route_change.hpp"
#include "telemetry/poller.hpp"

namespace tme::engine {
namespace {

TEST(EngineReplay, MultiThreadedFullDaySmoke) {
    const scenario::Scenario sc =
        scenario::make_scenario(scenario::Network::europe);
    EngineConfig config;
    config.window_size = 12;
    config.methods = {Method::gravity, Method::bayesian, Method::vardi,
                      Method::fanout};
    config.threads = 4;
    OnlineEngine engine(sc.topo, sc.routing, config);

    const ReplayResult result = replay_scenario(engine, sc);
    ASSERT_EQ(result.windows.size(), sc.demands.size());
    EXPECT_EQ(engine.metrics().samples_ingested, sc.demands.size());
    EXPECT_EQ(engine.metrics().windows_run, sc.demands.size());
    EXPECT_EQ(engine.metrics().epoch_changes, 0u);
    // One cache miss on the first sample, hits ever after.
    EXPECT_EQ(engine.metrics().cache_misses, 1u);
    EXPECT_EQ(engine.metrics().cache_hits, sc.demands.size() - 1);

    for (const WindowResult& window : result.windows) {
        for (const MethodRun& run : window.runs) {
            ASSERT_EQ(run.estimate.size(), sc.topo.pair_count());
            EXPECT_TRUE(linalg::all_finite(run.estimate));
            EXPECT_FALSE(std::isnan(run.mre));
        }
    }
    // Sanity on accuracy: gravity on the near-gravity Europe scenario
    // must beat 60% MRE, and the regularized methods must not be wildly
    // off either.
    ASSERT_TRUE(result.mean_mre.count(Method::gravity));
    EXPECT_LT(result.mean_mre.at(Method::gravity), 0.6);
    ASSERT_TRUE(result.mean_mre.count(Method::bayesian));
    EXPECT_LT(result.mean_mre.at(Method::bayesian), 1.0);
}

TEST(EngineReplay, MidDayRouteChangeNeverServesStaleEpoch) {
    const scenario::Scenario sc =
        scenario::make_scenario(scenario::Network::europe);
    const linalg::SparseMatrix rerouted =
        core::perturbed_routing(sc.topo, 0.8, 5);
    ASSERT_NE(core::routing_fingerprint(rerouted),
              core::routing_fingerprint(sc.routing));

    constexpr std::size_t change_at = 150;
    EngineConfig config;
    config.window_size = 8;
    config.methods = {Method::gravity, Method::bayesian};
    OnlineEngine engine(sc.topo, sc.routing, config);

    ReplayOptions options;
    options.events = {{change_at, &rerouted}};
    const ReplayResult result = replay_scenario(engine, sc, options);
    ASSERT_EQ(result.windows.size(), sc.demands.size());

    EXPECT_EQ(engine.metrics().epoch_changes, 1u);
    EXPECT_EQ(engine.metrics().window_flushes, 1u);

    const std::uint64_t fp_before = core::routing_fingerprint(sc.routing);
    const std::uint64_t fp_after = core::routing_fingerprint(rerouted);
    for (const WindowResult& window : result.windows) {
        // Every window must be tagged with the epoch of the routing
        // that was actually active — a stale fingerprint after the
        // change would mean cached data from the old R was served.
        const std::uint64_t expected =
            window.window_end_sample < change_at ? fp_before : fp_after;
        EXPECT_EQ(window.epoch_fingerprint, expected)
            << "sample " << window.window_end_sample;
        // No window may straddle the routing change.
        if (window.window_end_sample >= change_at) {
            EXPECT_GE(window.window_start_sample, change_at);
        }
    }

    // The first post-change window was rebuilt from scratch.
    const WindowResult& first_after = result.windows[change_at];
    EXPECT_EQ(first_after.window_size, 1u);
    EXPECT_EQ(first_after.window_start_sample, change_at);

    // Post-change estimates are computed against the NEW routing: the
    // engine's gravity estimate must equal a direct computation from
    // the rerouted loads, bit for bit.
    core::SnapshotProblem snap;
    snap.topo = &sc.topo;
    snap.routing = &rerouted;
    snap.loads = rerouted.multiply(sc.demands[change_at]);
    const linalg::Vector direct = core::gravity_estimate(snap);
    const MethodRun* gravity = first_after.find(Method::gravity);
    ASSERT_NE(gravity, nullptr);
    ASSERT_EQ(gravity->estimate.size(), direct.size());
    for (std::size_t p = 0; p < direct.size(); ++p) {
        EXPECT_EQ(gravity->estimate[p], direct[p]);
    }

    // Flapping back to the original routing hits the epoch cache.
    const std::size_t hits_before = engine.metrics().cache_hits;
    engine.set_routing(sc.routing);
    engine.ingest(sc.demands.size(), sc.loads[0]);
    EXPECT_EQ(engine.metrics().cache_misses, 2u);  // still only two builds
    EXPECT_EQ(engine.metrics().cache_hits, hits_before + 1);
}

TEST(EngineReplay, TelemetryIngestionFlagsGaps) {
    const scenario::Scenario sc =
        scenario::make_scenario(scenario::Network::europe);
    const std::size_t links = sc.topo.link_count();
    const std::size_t intervals = 24;

    // True per-link rates from the first day's samples.
    std::vector<std::vector<double>> true_rates(intervals);
    for (std::size_t k = 0; k < intervals; ++k) {
        true_rates[k] = sc.loads[k];
    }
    telemetry::PollerConfig poller;
    poller.loss_probability = 0.2;
    poller.backup_recovery_probability = 0.5;
    poller.seed = 11;
    const telemetry::PollingOutcome outcome =
        telemetry::simulate_polling(true_rates, poller);
    ASSERT_EQ(outcome.store.objects(), links);
    ASSERT_GT(outcome.polls_lost, 0u);

    EngineConfig config;
    config.window_size = 6;
    config.methods = {Method::gravity, Method::bayesian};
    OnlineEngine engine(sc.topo, sc.routing, config);
    const std::vector<WindowResult> windows = engine.ingest_outcome(outcome);
    EXPECT_EQ(windows.size(), intervals);
    EXPECT_EQ(engine.metrics().samples_ingested, intervals);
    // Lost polls surfaced as gap-flagged samples.
    EXPECT_GT(engine.metrics().gap_samples, 0u);
    EXPECT_EQ(engine.window().gap_count(), engine.metrics().gap_samples);
    for (const WindowResult& window : windows) {
        for (const MethodRun& run : window.runs) {
            EXPECT_TRUE(linalg::all_finite(run.estimate));
        }
    }

    // Object-count mismatch is rejected.
    telemetry::TimeSeriesStore tiny(3, 2);
    EXPECT_THROW(engine.ingest_interval(tiny, 0), std::invalid_argument);
}

TEST(EngineReplay, AsyncIngestionMatchesSynchronousReplay) {
    scenario::Scenario sc =
        scenario::make_scenario(scenario::Network::europe);
    sc.demands.resize(80);
    sc.loads.resize(80);
    const linalg::SparseMatrix rerouted =
        core::perturbed_routing(sc.topo, 0.8, 5);

    EngineConfig config;
    config.window_size = 8;
    config.methods = {Method::gravity, Method::bayesian, Method::vardi,
                      Method::fanout};
    ReplayOptions options;
    options.events = {{40, &rerouted}};

    OnlineEngine sync_engine(sc.topo, sc.routing, config);
    const ReplayResult sync_result =
        replay_scenario(sync_engine, sc, options);

    // Tiny queue: the producer must block on backpressure many times,
    // yet order (and therefore every estimate) is preserved exactly.
    OnlineEngine async_engine(sc.topo, sc.routing, config);
    const ReplayResult async_result = replay_scenario_async(
        async_engine, sc, options, /*queue_capacity=*/2);

    ASSERT_EQ(async_result.windows.size(), sync_result.windows.size());
    for (std::size_t k = 0; k < sync_result.windows.size(); ++k) {
        const WindowResult& a = sync_result.windows[k];
        const WindowResult& b = async_result.windows[k];
        EXPECT_EQ(a.epoch_fingerprint, b.epoch_fingerprint);
        ASSERT_EQ(a.runs.size(), b.runs.size());
        for (std::size_t m = 0; m < a.runs.size(); ++m) {
            ASSERT_EQ(a.runs[m].estimate.size(),
                      b.runs[m].estimate.size());
            for (std::size_t p = 0; p < a.runs[m].estimate.size(); ++p) {
                EXPECT_EQ(a.runs[m].estimate[p], b.runs[m].estimate[p])
                    << "window " << k;
            }
        }
    }
    // The route change travelled in-band and was applied identically.
    EXPECT_EQ(async_engine.metrics().epoch_changes.load(), 1u);
    EXPECT_EQ(async_engine.metrics().window_flushes.load(), 1u);
}

TEST(EngineReplay, MetricsSummaryMentionsEveryMethod) {
    const scenario::Scenario sc =
        scenario::make_scenario(scenario::Network::europe);
    EngineConfig config;
    config.window_size = 6;
    config.methods = {Method::gravity, Method::kruithof, Method::entropy,
                      Method::bayesian, Method::vardi, Method::fanout};
    config.threads = 2;
    OnlineEngine engine(sc.topo, sc.routing, config);
    engine.set_truth(
        [&sc](std::size_t sample) { return sc.demands.at(sample); });
    for (std::size_t k = 0; k < 6; ++k) {
        engine.ingest(k, sc.loads[k]);
    }
    const std::string summary = engine.metrics().summary();
    for (Method m : config.methods) {
        EXPECT_NE(summary.find(method_name(m)), std::string::npos)
            << summary;
    }
    EXPECT_NE(summary.find("hit rate"), std::string::npos);
    EXPECT_NE(summary.find("mean_mre"), std::string::npos);
}

}  // namespace
}  // namespace tme::engine
