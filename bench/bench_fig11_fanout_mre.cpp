// Figure 11: fanout-estimation MRE as a function of the measurement
// window length, for both subnetworks.
#include "bench_common.hpp"

#include "core/fanout.hpp"

namespace {

void sweep(const tme::scenario::Scenario& sc) {
    using namespace tme;
    const linalg::Vector reference = sc.busy_mean_demands();
    const double thr = core::threshold_for_coverage(reference, 0.9);
    std::printf("\n%s:\n%8s %8s\n", sc.name.c_str(), "window", "MRE");
    for (std::size_t window : {1u, 2u, 3u, 5u, 8u, 12u, 20u, 30u, 40u}) {
        const core::FanoutResult r =
            core::fanout_estimate(sc.busy_series_window(window));
        const double mre =
            core::mean_relative_error(reference, r.mean_demands, thr);
        std::printf("%8zu %8.3f  %s\n", window, mre,
                    bench::bar(mre, 0.8, 30).c_str());
    }
}

}  // namespace

int main() {
    tme::bench::header(
        "Figure 11 - fanout MRE vs window length",
        "Fig. 11: error decreases for short windows then levels out; "
        "final ~0.22 (EU) / ~0.40 (US) in Table 2",
        "decreasing-then-flat curves; USA worse than Europe");
    sweep(tme::bench::europe());
    sweep(tme::bench::usa());
    return 0;
}
