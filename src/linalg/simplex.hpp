// Two-phase revised simplex for linear programs in standard form:
//
//     minimize    c'x
//     subject to  A x = b,   x >= 0
//
// This is the engine behind the paper's worst-case demand bounds
// (Section 4.3.1): for every OD pair p we solve max/min s_p subject to
// R s = t, s >= 0.  Those 2*P programs share one feasible region, so the
// solver supports warm-starting from a previously optimal basis — phase 1
// then runs once per network instead of once per program.
//
// Robustness features: Dantzig pricing with automatic fallback to Bland's
// rule after a run of degenerate pivots (anti-cycling), explicit basis
// inverse with periodic refactorization, and detection of redundant rows
// (artificials stuck at zero after phase 1).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace tme::linalg {

struct LpProblem {
    Matrix a;  ///< m x n constraint matrix
    Vector b;  ///< right-hand side (length m)
    Vector c;  ///< objective (length n)
};

enum class LpStatus { optimal, infeasible, unbounded, iteration_limit };

struct LpResult {
    LpStatus status = LpStatus::iteration_limit;
    Vector x;                 ///< primal solution (length n) when optimal
    double objective = 0.0;   ///< c'x when optimal
    std::size_t iterations = 0;
    std::vector<std::size_t> basis;  ///< optimal basis (for warm starts)
};

struct LpOptions {
    std::size_t max_iterations = 0;  ///< 0 = 50*(m+n)+1000
    double tolerance = 1e-9;         ///< feasibility/optimality tolerance
    /// Optional warm-start basis (column indices, one per row).  If the
    /// basis is singular or infeasible the solver falls back to phase 1.
    std::vector<std::size_t> initial_basis;
};

/// Solves the LP.  Throws std::invalid_argument on dimension mismatch.
LpResult solve_lp(const LpProblem& problem, const LpOptions& options = {});

}  // namespace tme::linalg
