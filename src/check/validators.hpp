// Reusable contract validators for the numerical core.
//
// Each validator throws check::ContractViolation with a precise
// diagnostic (which element, which row, what value) on the first broken
// invariant and returns normally otherwise.  They are plain functions:
// call sites gate them behind TME_CONTRACT_CHECK / TME_CONTRACT_DBG_CHECK
// (check/contract.hpp) so a contracts-off build never evaluates them.
//
// All validators are read-only — attaching them to a solver boundary can
// never perturb an estimate, which is what lets the bench gate
// contracts-on vs contracts-off runs bitwise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "check/contract.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "linalg/vector_ops.hpp"

namespace tme::check {

/// CSR structural integrity: offsets array monotone non-decreasing with
/// offsets[0] == 0, every column index in range and strictly ascending
/// within its row, and the final offset equal to the nonzero count.
/// `what` names the matrix in the diagnostic ("routing", "sparse Gram").
void csr_structure(const linalg::CsrView& a, const char* what);
void csr_structure(const linalg::SparseMatrix& a, const char* what);

/// No NaN/Inf anywhere.  O(n) / O(rows*cols) scan — gate behind the DBG
/// tier on hot paths.
void finite(const linalg::Vector& v, const char* what);
void finite(const linalg::Matrix& m, const char* what);

/// Finite and elementwise >= -tolerance (solver outputs that are
/// nonnegative by construction: NNLS/QP primal iterates, demand
/// estimates).
void finite_nonnegative(const linalg::Vector& v, const char* what,
                        double tolerance = 0.0);

/// Solver entry boundary, operator form: A well-formed, b finite, and
/// b.size() == A.rows.
void solver_boundary(const char* solver, const linalg::CsrView& a,
                     const linalg::Vector& b);

/// Solver entry boundary, normal-equations form: square Gram with finite
/// entries and atb.size() == gram.rows().
void solver_boundary(const char* solver, const linalg::Matrix& gram,
                     const linalg::Vector& atb);

/// Solver exit boundary: the produced iterate is finite (and nonnegative
/// when the solver guarantees it).
void solver_boundary(const char* solver, const linalg::Vector& x,
                     bool require_nonnegative = false);

/// Factored NNLS passive-set consistency: every passive index is in
/// range and unique with x strictly positive there, and every
/// non-passive coordinate sits exactly at the bound (x == 0).  Solvers
/// call this after each pivot's feasibility restoration, where the
/// active-set invariant must hold exactly — a drifting passive set is
/// how a corrupted incremental factor first becomes visible.
void solver_boundary(const char* solver, const linalg::Vector& x,
                     const std::vector<std::size_t>& passive_set);

/// Published-snapshot structural integrity (serving layer): a nonzero
/// publication version, ordered window bounds, and uniform estimate
/// lengths across every served method — the shape invariants the
/// lock-free read path's torn-read checks assume.  `estimate_lengths`
/// holds each method's estimate size in method order.
void snapshot_structure(std::uint64_t version, std::size_t window_start,
                        std::size_t window_end,
                        const std::vector<std::size_t>& estimate_lengths,
                        const char* what);

}  // namespace tme::check
