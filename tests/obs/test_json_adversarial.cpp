// Adversarial inputs for obs::Json::parse.  The strict parser runs on
// CI-artifact round-trips (trace exports, metrics JSON), so a crash or
// a silently-accepted malformed document wedges or corrupts the bench
// lane.  Every case here must come back std::nullopt — never crash,
// never accept — and the accept table pins the valid forms that
// hardening must not break.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "obs/json.hpp"

namespace {

using tme::obs::Json;

struct RejectCase {
    const char* label;
    std::string input;
};

std::string nested(std::size_t depth, char open, char close) {
    std::string s(depth, open);
    s.append(depth, close);
    return s;
}

TEST(JsonAdversarial, MalformedInputsAreRejectedNotCrashed) {
    const RejectCase cases[] = {
        {"empty", ""},
        {"ws only", "   \n\t  "},
        {"deep array nesting", std::string(100000, '[')},
        {"deep closed array nesting", nested(5000, '[', ']')},
        {"deep object nesting",
         [] {
             std::string s;
             for (int i = 0; i < 5000; ++i) s += "{\"k\":";
             s += "0";
             for (int i = 0; i < 5000; ++i) s += "}";
             return s;
         }()},
        {"truncated string", "\"abc"},
        {"truncated escape", "\"abc\\"},
        {"bad escape letter", "\"\\q\""},
        {"truncated unicode escape", "\"\\u12\""},
        {"non-hex unicode escape", "\"\\u12G4\""},
        {"lone high surrogate", "\"\\uD834\""},
        {"lone low surrogate", "\"\\uDD1E\""},
        {"high surrogate then text", "\"\\uD834x\""},
        {"high surrogate then bad low", "\"\\uD834\\u0041\""},
        {"raw newline in string", "\"a\nb\""},
        {"raw tab in string", "\"a\tb\""},
        {"raw NUL in string", std::string("\"a\0b\"", 5)},
        {"stray continuation byte", "\"a\x80" "b\""},
        {"invalid lead byte 0xFF", "\"a\xFF" "b\""},
        {"truncated 2-byte utf8", "\"\xC3\""},
        {"truncated 3-byte utf8", "\"\xE2\x82\""},
        {"overlong utf8 slash", "\"\xC0\xAF\""},
        {"utf8 encoded surrogate", "\"\xED\xA0\x80\""},
        {"utf8 beyond U+10FFFF", "\"\xF4\x90\x80\x80\""},
        {"bare word", "tru"},
        {"trailing garbage", "{} x"},
        {"unclosed object", "{\"a\": 1"},
        {"missing colon", "{\"a\" 1}"},
        {"missing value", "{\"a\":}"},
        {"trailing comma array", "[1, 2,]"},
        {"trailing comma object", "{\"a\":1,}"},
        {"unquoted key", "{a: 1}"},
        {"double sign number", "--1"},
        {"number then junk", "1.2.3"},
        {"huge number token",
         "1" + std::string(100, '0') + std::string(60, '0') + "e"},
    };
    for (const RejectCase& c : cases) {
        const std::optional<Json> parsed = Json::parse(c.input);
        EXPECT_FALSE(parsed.has_value()) << "accepted: " << c.label;
    }
}

TEST(JsonAdversarial, ValidInputsStillAccepted) {
    // The hardening must not reject well-formed documents.
    EXPECT_TRUE(Json::parse("{}").has_value());
    EXPECT_TRUE(Json::parse("[]").has_value());
    EXPECT_TRUE(Json::parse("null").has_value());
    EXPECT_TRUE(Json::parse("-12.5e-3").has_value());
    EXPECT_TRUE(Json::parse(nested(90, '[', ']')).has_value());
    EXPECT_FALSE(Json::parse(nested(97, '[', ']')).has_value());

    // Escaped control characters, the escaped-quote family, and BMP
    // escapes round-trip.
    const std::optional<Json> s =
        Json::parse("\"a\\n\\t\\\"\\\\b\\u00e9\"");
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->as_string(), "a\n\t\"\\b\xC3\xA9");

    // A surrogate pair combines into one non-BMP code point
    // (U+1D11E MUSICAL SYMBOL G CLEF -> 4-byte UTF-8).
    const std::optional<Json> clef = Json::parse("\"\\uD834\\uDD1E\"");
    ASSERT_TRUE(clef.has_value());
    EXPECT_EQ(clef->as_string(), "\xF0\x9D\x84\x9E");

    // Raw multi-byte UTF-8 passes through byte-identical.
    const std::optional<Json> raw = Json::parse("\"caf\xC3\xA9\"");
    ASSERT_TRUE(raw.has_value());
    EXPECT_EQ(raw->as_string(), "caf\xC3\xA9");

    // Document-shaped input typical of the artifact round-trip.
    const std::optional<Json> doc = Json::parse(
        "{\"metrics\": {\"runs\": 10, \"p99\": 0.0031},"
        " \"methods\": [\"gravity\", \"fanout\"], \"ok\": true}");
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("metrics")->find("runs")->as_int(), 10);

    // Round-trip: dump() of a parsed document re-parses to the same
    // dump (the property the CI artifact checks rely on).
    const std::string dumped = doc->dump();
    const std::optional<Json> again = Json::parse(dumped);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->dump(), dumped);
}

}  // namespace
