// Figure 10: fanout-estimation scatter for window lengths 1, 3 and 10 on
// the American subnetwork.
#include "bench_common.hpp"

#include "core/fanout.hpp"
#include "linalg/stats.hpp"

int main() {
    using namespace tme;
    bench::header(
        "Figure 10 - fanout estimation vs window length (USA)",
        "Fig. 10: scatter tightens from K=1 to K=3, marginal gains after",
        "correlation with the true averages rises with K and saturates");

    const scenario::Scenario& sc = bench::usa();
    const linalg::Vector reference = sc.busy_mean_demands();
    const double thr = bench::report_threshold(reference);

    for (std::size_t window : {1u, 3u, 10u}) {
        const core::FanoutResult r =
            core::fanout_estimate(sc.busy_series_window(window));
        const double mre =
            core::mean_relative_error(reference, r.mean_demands, thr);
        std::printf(
            "\nwindow K=%zu: MRE = %.3f, pearson(est, true avg) = %.3f, "
            "sum-to-one violation = %.1e\n",
            window, mre, linalg::pearson(reference, r.mean_demands),
            r.equality_violation);
        // Compact scatter: est/true ratio quantiles over large demands.
        const auto big = core::demands_above(reference, thr);
        linalg::Vector ratios;
        for (std::size_t p : big) {
            if (reference[p] > 0.0) {
                ratios.push_back(r.mean_demands[p] / reference[p]);
            }
        }
        std::printf("est/true over large demands: p10=%.2f p50=%.2f "
                    "p90=%.2f\n",
                    linalg::quantile(ratios, 0.1),
                    linalg::quantile(ratios, 0.5),
                    linalg::quantile(ratios, 0.9));
    }
    return 0;
}
