// Table 1: Vardi-approach MRE for sigma^-2 in {0.01, 1} with K = 50 busy
// period samples.
#include "bench_common.hpp"

#include "core/vardi.hpp"

namespace {

void row(const tme::scenario::Scenario& sc, double weight,
         double paper_mre) {
    using namespace tme;
    const core::SeriesProblem series = sc.busy_series();
    const linalg::Vector reference = sc.busy_mean_demands();
    const double thr = core::threshold_for_coverage(reference, 0.9);
    core::VardiOptions options;
    options.second_moment_weight = weight;
    const core::VardiResult r = core::vardi_estimate(series, options);
    const double mre =
        core::mean_relative_error(reference, r.lambda, thr);
    std::printf("%-8s sigma^-2=%-5.2f  MRE = %8.2f   (paper: %.2f)\n",
                sc.name.c_str(), weight, mre, paper_mre);
}

}  // namespace

int main() {
    tme::bench::header(
        "Table 1 - Vardi approach, K = 50",
        "Table 1: MRE 0.47/0.98 at sigma^-2=0.01; 302/1183 at "
        "sigma^-2=1 (EU/US)",
        "sigma^-2=1 catastrophically worse than 0.01; both far worse "
        "than the regularized snapshot methods (real traffic is not "
        "Poisson and K=50 cannot estimate the covariance)");
    row(tme::bench::europe(), 0.01, 0.47);
    row(tme::bench::usa(), 0.01, 0.98);
    row(tme::bench::europe(), 1.0, 302.0);
    row(tme::bench::usa(), 1.0, 1183.0);
    return 0;
}
