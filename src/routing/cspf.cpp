#include "routing/cspf.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace tme::routing {

BandwidthLedger::BandwidthLedger(const topology::Topology& topo,
                                 double max_utilization)
    : topo_(&topo),
      max_utilization_(max_utilization),
      reserved_(topo.link_count(), 0.0) {
    if (max_utilization <= 0.0) {
        throw std::invalid_argument(
            "BandwidthLedger: max_utilization must be positive");
    }
}

double BandwidthLedger::available(std::size_t link_id) const {
    const topology::Link& l = topo_->link(link_id);
    return l.capacity_mbps * max_utilization_ - reserved_[link_id];
}

bool BandwidthLedger::can_fit(std::size_t link_id, double mbps) const {
    return available(link_id) >= mbps - 1e-9;
}

void BandwidthLedger::reserve(const Path& path, double mbps) {
    for (std::size_t lid : path) {
        if (!can_fit(lid, mbps)) {
            throw std::logic_error("BandwidthLedger: over-reservation");
        }
    }
    for (std::size_t lid : path) reserved_[lid] += mbps;
}

double BandwidthLedger::reserved(std::size_t link_id) const {
    if (link_id >= reserved_.size()) {
        throw std::out_of_range("BandwidthLedger::reserved");
    }
    return reserved_[link_id];
}

std::optional<Lsp> route_lsp(const topology::Topology& topo,
                             BandwidthLedger& ledger, std::size_t src,
                             std::size_t dst, double bandwidth_mbps,
                             const CspfOptions& options) {
    Lsp lsp;
    lsp.src = src;
    lsp.dst = dst;
    lsp.bandwidth_mbps = bandwidth_mbps;

    // CSPF: prune links that cannot fit the LSP.
    const LinkFilter fit = [&ledger, bandwidth_mbps](const topology::Link& l) {
        return ledger.can_fit(l.id, bandwidth_mbps);
    };
    if (auto path = shortest_path(topo, src, dst, fit)) {
        lsp.path = std::move(*path);
        lsp.constrained = true;
        ledger.reserve(lsp.path, bandwidth_mbps);
        return lsp;
    }
    if (!options.fallback_to_igp) return std::nullopt;
    // Unconstrained fallback: the LSP is set up along the IGP path without
    // reserving (it would not fit), mirroring an operator temporarily
    // oversubscribing rather than blackholing traffic.
    if (auto path = shortest_path(topo, src, dst)) {
        lsp.path = std::move(*path);
        lsp.constrained = false;
        return lsp;
    }
    return std::nullopt;
}

std::vector<Lsp> build_lsp_mesh(const topology::Topology& topo,
                                const std::vector<double>& bandwidth,
                                const CspfOptions& options) {
    const std::size_t pairs = topo.pair_count();
    if (bandwidth.size() != pairs) {
        throw std::invalid_argument("build_lsp_mesh: bandwidth size mismatch");
    }
    // Descending bandwidth order; ties broken by pair index for
    // determinism.
    std::vector<std::size_t> order(pairs);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&bandwidth](std::size_t a, std::size_t b) {
                  if (bandwidth[a] != bandwidth[b]) {
                      return bandwidth[a] > bandwidth[b];
                  }
                  return a < b;
              });

    BandwidthLedger ledger(topo, options.max_utilization);
    std::vector<Lsp> mesh(pairs);
    for (std::size_t p : order) {
        const auto [src, dst] = topo.pair_nodes(p);
        auto lsp = route_lsp(topo, ledger, src, dst, bandwidth[p], options);
        if (!lsp) {
            throw std::runtime_error("build_lsp_mesh: unreachable PoP pair " +
                                     topo.pop(src).name + " -> " +
                                     topo.pop(dst).name);
        }
        mesh[p] = std::move(*lsp);
    }
    return mesh;
}

}  // namespace tme::routing
