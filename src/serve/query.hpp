// Typed query surface over published estimate snapshots.
//
// Every lookup returns QueryResult<T>: a status plus the value.  A miss
// is always a *typed* error — pair_out_of_range, method_not_served,
// version_retired — never a silently empty result, so a consumer can
// distinguish "the fanout QP did not run this window" from "that OD
// pair does not exist" (the property tests pin this).
//
// The snapshot-level queries are pure functions over one immutable
// EstimateSnapshot, so they are trivially safe to run from any number
// of reader threads:
//   * point()  — one OD pair's estimate under one method;
//   * top_k()  — the k heaviest OD pairs (partial-select via
//     std::nth_element: O(pairs + k log k), no full sort; ties break
//     deterministically toward the lower pair index);
//   * delta()  — elementwise newer - older between two windows.
// Store-level queries (time ranges, version lookups) live on
// serve::Reader (store.hpp), which adds the lock-free version pinning.
#pragma once

#include <cstddef>
#include <vector>

#include "serve/snapshot.hpp"

namespace tme::serve {

enum class QueryStatus {
    ok,
    empty_store,        ///< nothing has been published yet
    version_unknown,    ///< version 0 or beyond the store head
    version_retired,    ///< version fell out of the retention window
    method_not_served,  ///< the window holds no estimate for the method
    pair_out_of_range,  ///< OD pair index >= the snapshot's pair count
    zero_k,             ///< top-k with k == 0 is a caller bug, not "[]"
    invalid_range,      ///< sample/version range with lo > hi
    shape_mismatch,     ///< delta between different-sized estimates
};

/// Stable name for diagnostics ("ok", "pair_out_of_range", ...).
const char* query_status_name(QueryStatus status);

template <typename T>
struct QueryResult {
    QueryStatus status = QueryStatus::ok;
    T value{};

    bool ok() const { return status == QueryStatus::ok; }
    explicit operator bool() const { return ok(); }
};

/// One heavy-hitter entry: OD pair index and its estimated demand.
struct HeavyHitter {
    std::size_t pair = 0;
    double value = 0.0;
};

/// The estimate for one OD pair under one method.
QueryResult<double> point(const EstimateSnapshot& snap, engine::Method m,
                          std::size_t pair);

/// The k heaviest OD pairs under `m`, ordered by descending estimate
/// with ties broken by ascending pair index (fully deterministic, so
/// concurrent readers of one snapshot agree bitwise).  k > pair_count
/// returns every pair; k == 0 is rejected as zero_k.
QueryResult<std::vector<HeavyHitter>> top_k(const EstimateSnapshot& snap,
                                            engine::Method m,
                                            std::size_t k);

/// Elementwise newer - older of the two snapshots' estimates for `m`.
/// Both snapshots must serve the method with equal-length estimates.
QueryResult<linalg::Vector> delta(const EstimateSnapshot& newer,
                                  const EstimateSnapshot& older,
                                  engine::Method m);

}  // namespace tme::serve
