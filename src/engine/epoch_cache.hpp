// Routing-epoch cache: per-routing-matrix precomputations keyed by the
// content fingerprint of R.
//
// A backbone's routing matrix is piecewise constant in time — it changes
// only when the IGP reconverges or an operator reroutes LSPs — while
// load samples arrive every five minutes.  Everything derived purely
// from R is therefore cached per epoch and invalidated *exactly* when a
// route change produces a matrix with a different fingerprint.  All
// derived data — the dense Gram R'R, the sparse CSR Gram (the factored
// fanout-QP/Bayesian data term), Vardi's transformed Gram
// G1 + w*(G1 .* G1), the fanout equality-constraint structure, and
// reduced-problem factorizations for the direct-measurement workflow —
// is built lazily on first use and dies with the epoch.  Laziness
// matters at generated-backbone scale: a 100-PoP network's dense Gram
// is ~0.8 GB, and an engine scheduling only Gram-free methods (gravity,
// Kruithof) or only the direct-measurement workflow (whose reduced Gram
// is built straight from the sparse routing copy) never pays for it.
// A small LRU keeps the last few epochs alive so routing flaps that
// revert to a previous configuration hit the cache again.
//
// Fingerprints are 64-bit, so distinct routing matrices could in
// principle collide; acquire() therefore verifies cheap structural
// identity (rows / cols / nonzero count) on every fingerprint hit and
// treats a mismatch as a miss, so a collision can never silently serve
// the wrong Gram.
//
// Thread-safety: one cache may be shared by a whole fleet of engines on
// the same topology.  acquire_shared() is safe to call concurrently
// (the LRU list is mutex-guarded; the returned shared_ptr pins the
// epoch across later evictions), and each epoch's lazy derived-data
// accessors use shared-mutex double-checked builds so N engines
// requesting the same quantity on a cold epoch build it exactly once
// and then read it lock-free of each other.  Counters are relaxed
// atomics so metric readers never see torn values.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>

#include "core/fanout.hpp"
#include "core/tomo_direct.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "obs/histogram.hpp"

namespace tme::engine {

/// Cached derived data for one routing configuration.  The epoch keeps
/// a private CSR *copy* of the matrix it was built from (cheap — the
/// nonzeros only), never a pointer — callers may destroy their matrix
/// the moment acquire() returns.
class RoutingEpoch {
  public:
    /// `build_latency` (optional) receives one sample per lazy derived-
    /// data build; co-owned so an epoch pinned past its cache's death
    /// still has a live sink.
    RoutingEpoch(std::uint64_t fingerprint, std::uint64_t serial,
                 const linalg::SparseMatrix& routing,
                 std::shared_ptr<obs::LatencyHistogram> build_latency =
                     nullptr);

    std::uint64_t fingerprint() const { return fingerprint_; }

    /// Cache-unique identity of this epoch.  Two epochs built from
    /// distinct matrices always have distinct serials even when their
    /// 64-bit fingerprints collide — compare serials, not
    /// fingerprints, to decide whether "the epoch changed".
    std::uint64_t serial() const { return serial_; }

    /// Structural identity of the source matrix (collision screening).
    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t nonzeros() const { return nonzeros_; }

    /// The epoch's own immutable copy of the routing matrix.
    const linalg::SparseMatrix& routing() const { return routing_; }

    /// Dense Gram matrix R'R (pairs x pairs); built lazily from the
    /// sparse routing copy on first use (shared-mutex double-checked,
    /// so N racing cold callers build it exactly once), immutable
    /// afterwards.  Does not count toward derived_builds().
    const linalg::Matrix& gram() const;

    /// True once the dense Gram has been built (telemetry / tests —
    /// schedulers running only Gram-free methods must never trigger it).
    bool gram_built() const;

    /// Sparse CSR Gram R'R (Gustavson), built lazily from the routing
    /// copy on first use — the factored data term the fanout QP and
    /// the Bayesian sparse path share per epoch.  Holds only the
    /// structurally coupled pair-pairs, so it exists at scales where
    /// the dense Gram cannot (200 PoPs: ~12.7 GB dense), and building
    /// it never triggers (or reads) the dense Gram.  Same double-
    /// checked once-build discipline as every other derived item;
    /// counts toward derived_builds().
    const linalg::SparseMatrix& sparse_gram() const;

    /// True once the sparse Gram has been built (telemetry / tests).
    bool sparse_gram_built() const;

    /// CSR transpose R' of the routing matrix, built lazily on first
    /// use — the shared input of every Gram-free operator path (Vardi,
    /// Bayesian, fanout): row p of R' lists column p's carriers, source
    /// rows ascending, which is exactly what linalg::gram_column needs
    /// to replay the Gram kernels bit-for-bit.  O(nnz) to build and
    /// store — the scheduler's default schedule derives everything from
    /// this instead of any pairs x pairs Gram.  Does not count toward
    /// derived_builds() (like gram(): the counter tracks the expensive
    /// quadratic builds the tests guard against).
    const linalg::SparseMatrix& routing_transpose() const;

    /// True once the routing transpose has been built (telemetry).
    bool routing_transpose_built() const;

    /// Vardi's transformed Gram G1 + weight*(G1 .* G1), built lazily on
    /// first use and cached per weight, so fleet jobs configured with
    /// different weights can share the epoch safely (each weight builds
    /// once; node-based storage keeps every returned reference valid
    /// until the epoch dies, never invalidated by another weight's
    /// build).
    const linalg::Matrix& vardi_gram(double weight) const;

    /// Fanout equality-constraint structure (row pattern of E and the
    /// all-ones right-hand side), built lazily from the topology on
    /// first use.  The topology must match the routing matrix's pair
    /// count.  Valid until the epoch dies; concurrent cold callers
    /// build exactly once.
    const core::FanoutConstraints& fanout_constraints(
        const topology::Topology& topo) const;

    /// Reduced-problem factorization for the direct-measurement
    /// workflow: G_u + tau*I Cholesky for the unmeasured pair set
    /// `unknown`, built straight from the sparse routing copy (the
    /// dense P x P Gram is never required).  Memoizes the most
    /// recent selection — the streaming pattern is a fixed measured set
    /// re-estimated window after window — and returns shared ownership
    /// so a factor stays usable across an eviction.
    std::shared_ptr<const core::ReducedFactor> reduced_factor(
        const std::vector<std::size_t>& unknown, double tau) const;

    /// Number of lazy derived-data builds performed so far (telemetry /
    /// tests; cache hits do not increment it).
    std::size_t derived_builds() const;

  private:
    struct Derived {
        /// Readers share; a cold build upgrades to exclusive and
        /// re-checks, so racing cold callers build each item once.
        mutable std::shared_mutex mutex;
        bool gram_built = false;
        linalg::Matrix gram;
        bool sparse_gram_built = false;
        linalg::SparseMatrix sparse_gram;
        bool transpose_built = false;
        linalg::SparseMatrix transpose;
        /// Node-based on purpose: inserting one weight's matrix never
        /// moves another's, so returned references stay valid.
        std::map<double, linalg::Matrix> vardi_by_weight;
        bool fanout_built = false;
        core::FanoutConstraints fanout;
        std::shared_ptr<const core::ReducedFactor> reduced;
        std::size_t builds = 0;
    };

    /// Times `build_seconds` into the build-latency histogram (no-op
    /// without a sink).
    void record_build(double build_seconds) const;

    std::uint64_t fingerprint_ = 0;
    std::uint64_t serial_ = 0;
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::size_t nonzeros_ = 0;
    linalg::SparseMatrix routing_;
    std::unique_ptr<Derived> derived_;
    std::shared_ptr<obs::LatencyHistogram> build_latency_;
};

class RoutingEpochCache {
  public:
    /// Content fingerprint function, injectable for collision tests;
    /// defaults to core::routing_fingerprint.
    using Fingerprint =
        std::function<std::uint64_t(const linalg::SparseMatrix&)>;

    explicit RoutingEpochCache(std::size_t capacity = 4,
                               Fingerprint fingerprint = {});

    /// Returns the epoch for `routing`, building it on a miss.  A
    /// fingerprint hit additionally requires structural identity
    /// (rows/cols/nnz); a colliding entry is left in place and a fresh
    /// epoch is built.  The returned pointer pins the epoch: it stays
    /// valid after eviction for as long as the caller holds it, so
    /// in-flight pipeline windows and fleet engines can never observe a
    /// destroyed epoch.  No pointer to `routing` is retained past this
    /// call.  Safe to call concurrently from many engines.
    std::shared_ptr<const RoutingEpoch> acquire_shared(
        const linalg::SparseMatrix& routing);

    /// Reference-returning convenience for single-threaded callers; the
    /// reference stays valid until `capacity` further distinct epochs
    /// have been acquired (at which point the entry is evicted and, if
    /// unpinned, destroyed).
    const RoutingEpoch& acquire(const linalg::SparseMatrix& routing) {
        return *acquire_shared(routing);
    }

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const;
    std::size_t hits() const {
        return hits_.load(std::memory_order_relaxed);
    }
    std::size_t misses() const {
        return misses_.load(std::memory_order_relaxed);
    }
    std::size_t evictions() const {
        return evictions_.load(std::memory_order_relaxed);
    }
    /// Fingerprint hits rejected by the structural-identity check.
    std::size_t collisions() const {
        return collisions_.load(std::memory_order_relaxed);
    }

    /// Derived-data build times across every epoch this cache created
    /// (a shared cache aggregates the whole fleet's builds).
    const obs::LatencyHistogram& build_latency() const {
        return *build_latency_;
    }

  private:
    std::size_t capacity_;
    Fingerprint fingerprint_;
    mutable std::mutex mutex_;  ///< guards entries_ and next_serial_
    std::uint64_t next_serial_ = 0;
    /// Most recently used first.  shared_ptr entries so a concurrent
    /// holder (pipeline window in flight, fleet engine) outlives an
    /// eviction.
    std::list<std::shared_ptr<RoutingEpoch>> entries_;
    std::atomic<std::size_t> hits_{0};
    std::atomic<std::size_t> misses_{0};
    std::atomic<std::size_t> evictions_{0};
    std::atomic<std::size_t> collisions_{0};
    /// shared_ptr so epochs pinned past the cache's lifetime can still
    /// record their late lazy builds safely.
    std::shared_ptr<obs::LatencyHistogram> build_latency_ =
        std::make_shared<obs::LatencyHistogram>();
};

}  // namespace tme::engine
