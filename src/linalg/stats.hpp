// Statistics used by the paper's data analysis (Section 5.2): sample
// moments of multivariate time series, the mean-variance log-log
// regression that fits Var{s_p} = phi * lambda_p^c, correlation metrics
// used to compare estimated and true traffic matrices, and quantiles.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace tme::linalg {

/// Arithmetic mean of a scalar sample; throws on empty input.
double mean(const Vector& x);

/// Unbiased (n-1) sample variance; returns 0 for n < 2.
double variance(const Vector& x);

/// Per-coordinate sample mean of a vector time series samples[k] (all of
/// equal length).
Vector sample_mean(const std::vector<Vector>& samples);

/// Sample covariance matrix (normalized by K, matching the paper's
/// Sigma-hat definition in Section 4.2.2).
Matrix sample_covariance(const std::vector<Vector>& samples);

/// Ordinary least squares fit y ~ intercept + slope * x.
struct LineFit {
    double intercept = 0.0;
    double slope = 0.0;
    double r_squared = 0.0;
};
LineFit fit_line(const Vector& x, const Vector& y);

/// Fits the scaling law var = phi * mean^c over strictly positive pairs
/// by regressing log(var) on log(mean).  Pairs with mean or var below
/// `floor` are skipped.  Returns {phi, c, r^2 of the log-log fit}.
struct ScalingLawFit {
    double phi = 0.0;
    double c = 0.0;
    double r_squared = 0.0;
    std::size_t points_used = 0;
};
ScalingLawFit fit_scaling_law(const Vector& means, const Vector& variances,
                              double floor = 0.0);

/// Pearson linear correlation coefficient.
double pearson(const Vector& x, const Vector& y);

/// Spearman rank correlation (average ranks on ties).
double spearman(const Vector& x, const Vector& y);

/// q-th quantile (0 <= q <= 1) with linear interpolation.
double quantile(Vector x, double q);

}  // namespace tme::linalg
