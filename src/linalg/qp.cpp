#include "linalg/qp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/lu.hpp"
#include <vector>

namespace tme::linalg {

Vector solve_eq_qp(const Matrix& h, const Vector& f, const Matrix& e,
                   const Vector& d) {
    const std::size_t n = h.rows();
    const std::size_t m = e.rows();
    if (h.cols() != n || f.size() != n || (m > 0 && e.cols() != n) ||
        d.size() != m) {
        throw std::invalid_argument("solve_eq_qp: dimension mismatch");
    }
    // KKT system: [H E'; E 0] [x; nu] = [f; d].
    Matrix kkt(n + m, n + m, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) kkt(i, j) = h(i, j);
    }
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            kkt(n + i, j) = e(i, j);
            kkt(j, n + i) = e(i, j);
        }
    }
    Vector rhs(n + m, 0.0);
    for (std::size_t i = 0; i < n; ++i) rhs[i] = f[i];
    for (std::size_t i = 0; i < m; ++i) rhs[n + i] = d[i];

    Lu lu(kkt);
    if (lu.singular()) {
        throw std::runtime_error("solve_eq_qp: singular KKT system");
    }
    Vector sol = lu.solve(rhs);
    return Vector(sol.begin(), sol.begin() + static_cast<std::ptrdiff_t>(n));
}

EqQpNonnegResult solve_eq_qp_nonneg(const Matrix& h, const Vector& f,
                                    const Matrix& e, const Vector& d,
                                    [[maybe_unused]] const EqQpNonnegOptions& options) {
    const std::size_t n = h.rows();
    const std::size_t m = e.rows();
    if (h.cols() != n || f.size() != n || (m > 0 && e.cols() != n) ||
        d.size() != m) {
        throw std::invalid_argument("solve_eq_qp_nonneg: dimension mismatch");
    }
    // Active-set on the non-negativity constraints over exact KKT solves
    // of the equality-constrained subproblem (free variables only).  A
    // penalty reformulation would bury the data term's fine structure
    // under the penalty's conditioning; the KKT route preserves it.
    double hmax = 1.0;
    for (std::size_t i = 0; i < n; ++i) hmax = std::max(hmax, h(i, i));
    const double tol = 1e-12 * hmax;

    std::vector<bool> fixed_zero(n, false);
    EqQpNonnegResult result;
    result.x.assign(n, 0.0);

    for (std::size_t round = 0; round < n + 1; ++round) {
        ++result.iterations;
        std::vector<std::size_t> free_vars;
        for (std::size_t j = 0; j < n; ++j) {
            if (!fixed_zero[j]) free_vars.push_back(j);
        }
        if (free_vars.empty()) break;
        const std::size_t k = free_vars.size();

        // KKT system on the free variables, ridge-regularized because H
        // restricted to the constraint manifold may be singular.
        double ridge = 1e-10 * hmax;
        Vector sol;
        for (int attempt = 0; attempt < 12; ++attempt) {
            Matrix kkt(k + m, k + m, 0.0);
            Vector rhs(k + m, 0.0);
            for (std::size_t a = 0; a < k; ++a) {
                rhs[a] = f[free_vars[a]];
                for (std::size_t b = 0; b < k; ++b) {
                    kkt(a, b) = h(free_vars[a], free_vars[b]);
                }
                kkt(a, a) += ridge;
                for (std::size_t r = 0; r < m; ++r) {
                    kkt(a, k + r) = e(r, free_vars[a]);
                    kkt(k + r, a) = e(r, free_vars[a]);
                }
            }
            for (std::size_t r = 0; r < m; ++r) rhs[k + r] = d[r];
            Lu lu(kkt);
            if (!lu.singular()) {
                sol = lu.solve(rhs);
                break;
            }
            ridge *= 100.0;
        }
        if (sol.empty()) {
            throw std::runtime_error(
                "solve_eq_qp_nonneg: singular KKT system");
        }

        // Fix the most negative coordinates at zero and re-solve; stop
        // when all free variables are (numerically) non-negative.
        bool any_negative = false;
        for (std::size_t a = 0; a < k; ++a) {
            if (sol[a] < -1e-9) {
                any_negative = true;
                break;
            }
        }
        if (!any_negative) {
            result.x.assign(n, 0.0);
            for (std::size_t a = 0; a < k; ++a) {
                result.x[free_vars[a]] = std::max(0.0, sol[a]);
            }
            result.converged = true;
            break;
        }
        for (std::size_t a = 0; a < k; ++a) {
            if (sol[a] < -1e-9) fixed_zero[free_vars[a]] = true;
        }
    }
    (void)tol;
    if (m > 0) {
        Vector viol = sub(gemv(e, result.x), d);
        result.equality_violation = nrm_inf(viol);
    }
    return result;
}

}  // namespace tme::linalg
