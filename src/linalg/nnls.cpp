#include "linalg/nnls.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>

#include "check/contract.hpp"
#include "check/validators.hpp"
#include "linalg/cholesky.hpp"

namespace tme::linalg {

namespace {

// --- Gram access policies -------------------------------------------------
//
// The active-set driver below is shared between nnls_gram (explicit
// dense Gram) and nnls_operator (columns generated on demand).  A
// policy answers entry/diagonal reads for the factor, runs the dense
// dual sweep when no O(nnz) operator is available, and manages the
// staged-column lifecycle the oracle path needs.  Both policies feed
// the factor the same doubles in the same order, which is what keeps
// the two entry points bitwise identical.

struct DenseGramAccess {
    const Matrix* gram;

    double entry(std::size_t i, std::size_t j) const { return (*gram)(i, j); }
    double diag(std::size_t j) const { return (*gram)(j, j); }

    // Staged-column lifecycle: nothing to do, the Gram already exists.
    void stage(std::size_t) {}
    void commit(std::size_t) {}
    void discard(std::size_t) {}
    void drop(std::size_t) {}

    void dual_sweep(Vector& w, const Vector& atb, const Vector& x,
                    const std::vector<std::size_t>& passive,
                    double shift) const {
        const std::size_t n = atb.size();
        for (std::size_t j = 0; j < n; ++j) {
            double acc = atb[j];
            for (std::size_t p : passive) {
                acc -= ((*gram)(j, p) + (j == p ? shift : 0.0)) * x[p];
            }
            w[j] = acc;
        }
    }

    double quad_row(std::size_t p, const Vector& x, double shift) const {
        double gx = 0.0;
        const std::size_t n = x.size();
        for (std::size_t q = 0; q < n; ++q) {
            if (x[q] != 0.0) {
                gx += ((*gram)(p, q) + (p == q ? shift : 0.0)) * x[q];
            }
        }
        return gx;
    }
};

class OracleGramAccess {
  public:
    explicit OracleGramAccess(const GramColumnOracle& oracle)
        : oracle_(&oracle), scratch_(oracle.dimension, 0.0) {}

    // Entry reads resolve against the staged column when j is staged
    // (O(1) from the dense scratch) and against the cached sparse
    // passive columns otherwise (binary search; only the rare
    // rank-deficient rebuild takes this path).
    double entry(std::size_t i, std::size_t j) const {
        if (j == staged_) return scratch_[i];
        const auto it = cache_.find(j);
        if (it == cache_.end()) return 0.0;
        const Col& col = it->second;
        const auto pos = std::lower_bound(col.idx.begin(), col.idx.end(), i);
        if (pos != col.idx.end() && *pos == i) {
            return col.val[static_cast<std::size_t>(pos - col.idx.begin())];
        }
        return 0.0;
    }
    double diag(std::size_t j) const { return entry(j, j); }

    void stage(std::size_t j) {
        clear_stage();
        oracle_->column(j, scratch_, staged_support_);
        staged_ = j;
    }
    void commit(std::size_t j) {
        Col col;
        col.idx = staged_support_;
        col.val.reserve(staged_support_.size());
        for (std::size_t q : staged_support_) col.val.push_back(scratch_[q]);
        cache_[j] = std::move(col);
        clear_stage();
    }
    void discard(std::size_t) { clear_stage(); }
    void drop(std::size_t j) { cache_.erase(j); }

    // Scatter form of the dense dual sweep, over the cached passive
    // columns only.  For every coordinate j the same nonzero terms are
    // subtracted in the same passive order with the same expression as
    // the dense sweep; the terms the scatter skips are exact-0.0
    // products there, which never change the accumulator.  Bitwise
    // equal to DenseGramAccess::dual_sweep, at O(sum passive col nnz).
    void dual_sweep(Vector& w, const Vector& atb, const Vector& x,
                    const std::vector<std::size_t>& passive,
                    double shift) const {
        w = atb;
        for (std::size_t p : passive) {
            const auto it = cache_.find(p);
            const Col& col = it->second;
            const double xp = x[p];
            bool diag_seen = false;
            for (std::size_t k = 0; k < col.idx.size(); ++k) {
                const std::size_t q = col.idx[k];
                if (q == p) diag_seen = true;
                w[q] -= (col.val[k] + (q == p ? shift : 0.0)) * xp;
            }
            if (!diag_seen && shift != 0.0) {
                // Structurally empty diagonal: the dense sweep still
                // subtracts the virtual shift term there.
                w[p] -= (0.0 + shift) * xp;
            }
        }
    }

    double quad_row(std::size_t p, const Vector& x, double shift) {
        stage(p);
        double gx = 0.0;
        const std::size_t n = x.size();
        for (std::size_t q = 0; q < n; ++q) {
            if (x[q] != 0.0) {
                gx += (scratch_[q] + (p == q ? shift : 0.0)) * x[q];
            }
        }
        clear_stage();
        return gx;
    }

  private:
    struct Col {
        std::vector<std::size_t> idx;
        std::vector<double> val;
    };

    void clear_stage() {
        for (std::size_t q : staged_support_) scratch_[q] = 0.0;
        staged_support_.clear();
        staged_ = SIZE_MAX;
    }

    const GramColumnOracle* oracle_;
    mutable std::vector<double> scratch_;
    std::vector<std::size_t> staged_support_;
    std::size_t staged_ = SIZE_MAX;
    std::unordered_map<std::size_t, Col> cache_;
};

// Maintains the Cholesky factor of G[passive, passive] incrementally in
// packed lower-triangular storage (row i at offset i(i+1)/2 — the
// factor never re-densifies the passive block, so its footprint is
// O(k^2) in the passive count, not the problem size).  Appending a
// variable costs O(k^2); removing one deletes its row and repairs the
// trailing block with a Givens-style rank-1 *update* (the deleted
// column folds back in additively, so positive definiteness is never
// at risk) in O((k - pos)^2).  Rank-deficient appends fall back to a
// full rebuild with escalating jitter.
template <typename GramAccess>
class PassiveFactor {
  public:
    /// `shift` is the virtual diagonal shift of NnlsOptions: every read
    /// of a diagonal Gram entry adds it, as if the caller had passed
    /// G + shift*I.
    PassiveFactor(GramAccess& gram, double jitter, double shift)
        : gram_(&gram), jitter_(jitter), shift_(shift) {}

    const std::vector<std::size_t>& passive() const { return passive_; }

    bool append(std::size_t j) {
        const std::size_t k = passive_.size();
        // New column: c = G[passive + {j}, j].
        Vector c(k);
        for (std::size_t i = 0; i < k; ++i) {
            c[i] = gram_->entry(passive_[i], j);
        }
        // Solve L w = c (forward substitution on the kxk leading block).
        Vector w(k);
        for (std::size_t i = 0; i < k; ++i) {
            double v = c[i];
            const double* row = l_.data() + row_off(i);
            for (std::size_t t = 0; t < i; ++t) v -= row[t] * w[t];
            w[i] = v / row[i];
        }
        double diag = gram_->diag(j) + shift_ + jitter_ - dot(w, w);
        if (diag <= 0.0 || !std::isfinite(diag)) {
            // Rank-deficient addition: retry with escalated jitter via a
            // full rebuild including j.
            passive_.push_back(j);
            l_.resize(row_off(k + 1));
            if (rebuild()) return true;
            passive_.pop_back();
            l_.resize(row_off(k));
            rebuild();
            return false;
        }
        l_.resize(row_off(k + 1));
        double* row = l_.data() + row_off(k);
        for (std::size_t i = 0; i < k; ++i) row[i] = w[i];
        row[k] = std::sqrt(diag);
        passive_.push_back(j);
        return true;
    }

    void remove_indices(const std::vector<std::size_t>& to_remove) {
        // Positions in the passive list, removed highest-first so the
        // remaining positions stay valid.
        std::vector<std::size_t> positions;
        for (std::size_t i = 0; i < passive_.size(); ++i) {
            if (std::find(to_remove.begin(), to_remove.end(), passive_[i]) !=
                to_remove.end()) {
                positions.push_back(i);
            }
        }
        for (std::size_t i = positions.size(); i-- > 0;) {
            remove_position(positions[i]);
        }
        for (std::size_t j : to_remove) gram_->drop(j);
    }

    // Solves G[passive,passive] z = rhs[passive].
    Vector solve(const Vector& atb) const {
        const std::size_t k = passive_.size();
        Vector y(k);
        for (std::size_t i = 0; i < k; ++i) {
            double v = atb[passive_[i]];
            const double* row = l_.data() + row_off(i);
            for (std::size_t t = 0; t < i; ++t) v -= row[t] * y[t];
            y[i] = v / row[i];
        }
        Vector z(k);
        for (std::size_t ii = k; ii-- > 0;) {
            double v = y[ii];
            for (std::size_t t = ii + 1; t < k; ++t) {
                v -= l_[row_off(t) + ii] * z[t];
            }
            z[ii] = v / l_[row_off(ii) + ii];
        }
        return z;
    }

  private:
    static std::size_t row_off(std::size_t i) { return i * (i + 1) / 2; }

    void remove_position(std::size_t pos) {
        const std::size_t k = passive_.size();
        const std::size_t m = k - 1 - pos;
        // Save the sub-diagonal of the deleted column: with row/column
        // pos gone, the trailing block must satisfy
        //   L~33 L~33' = L33 L33' + l32 l32',
        // a rank-1 update of the old trailing factor by this vector.
        std::vector<double> v(m);
        for (std::size_t u = 0; u < m; ++u) {
            v[u] = l_[row_off(pos + 1 + u) + pos];
        }
        // Shift rows pos+1..k-1 up one, dropping column pos.  Each
        // destination row ends exactly where its source row begins, so
        // the in-place forward copy never overlaps.
        for (std::size_t r = pos + 1; r < k; ++r) {
            const double* src = l_.data() + row_off(r);
            double* dst = l_.data() + row_off(r - 1);
            for (std::size_t t = 0; t < pos; ++t) dst[t] = src[t];
            for (std::size_t t = pos; t < r; ++t) dst[t] = src[t + 1];
        }
        l_.resize(row_off(k - 1));
        passive_.erase(passive_.begin() +
                       static_cast<std::ptrdiff_t>(pos));
        // Givens-style rank-1 update (LINPACK dchud recurrences) of the
        // trailing block.  An update — unlike a downdate — keeps the
        // diagonal bounded away from zero, so no pivoting or fallback
        // is needed.
        for (std::size_t t = 0; t < m; ++t) {
            const std::size_t g = pos + t;
            double* row = l_.data() + row_off(g);
            const double ljj = row[g];
            const double r = std::sqrt(ljj * ljj + v[t] * v[t]);
            const double cosg = r / ljj;
            const double sing = v[t] / ljj;
            row[g] = r;
            for (std::size_t u = t + 1; u < m; ++u) {
                double& lhg = l_[row_off(pos + u) + g];
                lhg = (lhg + sing * v[u]) / cosg;
                v[u] = cosg * v[u] - sing * lhg;
            }
        }
    }

    bool rebuild() {
        const std::size_t k = passive_.size();
        double jitter = jitter_;
        for (int attempt = 0; attempt < 20; ++attempt) {
            bool ok = true;
            for (std::size_t col = 0; col < k && ok; ++col) {
                double diag = gram_->diag(passive_[col]) + shift_ + jitter;
                const double* crow = l_.data() + row_off(col);
                for (std::size_t t = 0; t < col; ++t) {
                    diag -= crow[t] * crow[t];
                }
                if (diag <= 0.0 || !std::isfinite(diag)) {
                    ok = false;
                    break;
                }
                l_[row_off(col) + col] = std::sqrt(diag);
                for (std::size_t row = col + 1; row < k; ++row) {
                    double v = gram_->entry(passive_[row], passive_[col]);
                    const double* rrow = l_.data() + row_off(row);
                    for (std::size_t t = 0; t < col; ++t) {
                        v -= rrow[t] * crow[t];
                    }
                    l_[row_off(row) + col] = v / l_[row_off(col) + col];
                }
            }
            if (ok) {
                jitter_ = jitter;
                return true;
            }
            double scale = 0.0;
            for (std::size_t i = 0; i < k; ++i) {
                scale = std::max(scale,
                                 gram_->diag(passive_[i]) + shift_);
            }
            jitter = (jitter == 0.0 ? std::max(scale, 1.0) * 1e-12
                                    : jitter * 100.0);
        }
        return false;
    }

    GramAccess* gram_;
    double jitter_;
    double shift_;
    std::vector<double> l_;  // packed lower triangle, k(k+1)/2 entries
    std::vector<std::size_t> passive_;
};

// Shared Lawson-Hanson driver.  The policy supplies Gram access; the
// loop structure, pivot rule, feasibility restoration, and tolerances
// are identical for both entry points, so identical problems follow
// identical active-set trajectories.
template <typename GramAccess>
NnlsResult nnls_active_set(GramAccess& gram, const Vector& atb, double btb,
                           const NnlsOptions& options) {
    const std::size_t n = atb.size();
    const double shift = options.gram_diagonal_shift;
    const SparseMatrix* op = options.gram_operator;
    const std::size_t max_iter =
        options.max_iterations > 0 ? options.max_iterations : 3 * n + 16;

    NnlsResult result;
    result.x.assign(n, 0.0);
    std::vector<bool> in_passive(n, false);
    PassiveFactor<GramAccess> factor(gram, 0.0, shift);

    double scale = nrm_inf(atb);
    if (scale == 0.0) scale = 1.0;
    const double tol = options.tolerance * scale;

    // Dual w = g - G x; x = 0 initially.
    Vector w = atb;

    // Inner loop: restore primal feasibility of the passive solve.
    const auto restore_feasibility = [&]() {
        while (true) {
            const std::vector<std::size_t>& passive = factor.passive();
            Vector z = factor.solve(atb);
            bool all_positive = true;
            for (double v : z) {
                if (v <= 0.0) {
                    all_positive = false;
                    break;
                }
            }
            if (all_positive) {
                for (std::size_t i = 0; i < passive.size(); ++i) {
                    result.x[passive[i]] = z[i];
                }
                break;
            }
            double alpha = 1.0;
            for (std::size_t i = 0; i < passive.size(); ++i) {
                if (z[i] <= 0.0) {
                    const double xj = result.x[passive[i]];
                    const double denom = xj - z[i];
                    if (denom > 0.0) alpha = std::min(alpha, xj / denom);
                }
            }
            double xmax = 0.0;
            for (std::size_t i = 0; i < passive.size(); ++i) {
                const std::size_t j = passive[i];
                result.x[j] = result.x[j] + alpha * (z[i] - result.x[j]);
                xmax = std::max(xmax, result.x[j]);
            }
            // Remove coordinates pinned at (numerical) zero by the step.
            const double removal_tol = 1e-12 * std::max(1.0, xmax);
            std::vector<std::size_t> to_remove;
            for (std::size_t i = 0; i < passive.size(); ++i) {
                const std::size_t j = passive[i];
                if (result.x[j] <= removal_tol && z[i] <= 0.0) {
                    result.x[j] = 0.0;
                    to_remove.push_back(j);
                    in_passive[j] = false;
                }
            }
            if (to_remove.empty()) {
                // Defensive: force out the most negative z to guarantee
                // progress.
                std::size_t worst = passive[0];
                double worst_z = z[0];
                for (std::size_t i = 1; i < passive.size(); ++i) {
                    if (z[i] < worst_z) {
                        worst_z = z[i];
                        worst = passive[i];
                    }
                }
                result.x[worst] = 0.0;
                to_remove.push_back(worst);
                in_passive[worst] = false;
            }
            factor.remove_indices(to_remove);
            if (factor.passive().empty()) break;
        }
    };

    // Refresh dual: w = g - (G + shift I) x restricted to passive
    // support.  With a sparse operator behind the Gram this is two
    // sparse mat-vecs (O(nnz)); otherwise the policy's sweep — a dense
    // row sweep per coordinate, or the bitwise-equal scatter over the
    // cached passive columns on the oracle path.
    const auto refresh_dual = [&]() {
        if (op != nullptr) {
            const Vector atax =
                op->multiply_transpose(op->multiply(result.x));
            for (std::size_t j = 0; j < n; ++j) {
                w[j] = atb[j] - atax[j] - shift * result.x[j];
            }
            return;
        }
        gram.dual_sweep(w, atb, result.x, factor.passive(), shift);
    };

    if (options.warm_start != nullptr) {
        if (options.warm_start->size() != n) {
            throw std::invalid_argument("nnls: warm start size");
        }
        for (std::size_t j = 0; j < n; ++j) {
            if ((*options.warm_start)[j] > 0.0) {
                gram.stage(j);
                if (factor.append(j)) {
                    gram.commit(j);
                    in_passive[j] = true;
                } else {
                    gram.discard(j);
                }
            }
        }
        if (!factor.passive().empty()) {
            restore_feasibility();
            TME_CONTRACT_DBG_CHECK(check::solver_boundary(
                "nnls passive set", result.x, factor.passive()));
            refresh_dual();
        }
    }

    bool budget_tripped = false;
    for (result.iterations = 0; result.iterations < max_iter;
         ++result.iterations) {
        // Cooperative deadline: x is primal-feasible after every
        // restore_feasibility(), so stopping between pivots returns a
        // usable (if suboptimal) point.
        if (options.budget != nullptr && options.budget->exhausted()) {
            budget_tripped = true;
            break;
        }
        // Most infeasible dual coordinate among active variables.
        std::size_t best = n;
        double best_w = tol;
        for (std::size_t j = 0; j < n; ++j) {
            if (!in_passive[j] && w[j] > best_w) {
                best_w = w[j];
                best = j;
            }
        }
        if (best == n) {
            result.converged = true;
            break;
        }
        gram.stage(best);
        if (!factor.append(best)) {
            // Numerically dependent column; treat as converged to avoid
            // cycling on a singular passive set.
            gram.discard(best);
            result.converged = true;
            break;
        }
        gram.commit(best);
        in_passive[best] = true;

        restore_feasibility();
        TME_CONTRACT_DBG_CHECK(check::solver_boundary(
            "nnls passive set", result.x, factor.passive()));
        refresh_dual();
    }

    if (btb > 0.0) {
        double quad = 0.0;
        for (std::size_t p = 0; p < n; ++p) {
            if (result.x[p] == 0.0) continue;
            const double gx = gram.quad_row(p, result.x, shift);
            quad += result.x[p] * (gx - 2.0 * atb[p]);
        }
        result.residual_norm = std::sqrt(std::max(0.0, quad + btb));
    }
    if (options.counters != nullptr) {
        options.counters->nnls_pivots += result.iterations;
    }
    result.outcome = result.converged ? SolveOutcome::converged
                     : budget_tripped ? SolveOutcome::budget_exhausted
                                      : SolveOutcome::iteration_capped;
    TME_CONTRACT_DBG_CHECK(check::solver_boundary(
        "nnls", result.x, /*require_nonnegative=*/true));
    return result;
}

}  // namespace

NnlsResult nnls_gram(const Matrix& gram_matrix, const Vector& atb, double btb,
                     const NnlsOptions& options) {
    const std::size_t n = atb.size();
    if (gram_matrix.rows() != n || gram_matrix.cols() != n) {
        throw std::invalid_argument("nnls_gram: dimension mismatch");
    }
    TME_CONTRACT_DBG_CHECK(
        check::solver_boundary("nnls_gram", gram_matrix, atb));
    if (options.gram_operator != nullptr) {
        TME_CONTRACT_DBG_CHECK(check::csr_structure(
            *options.gram_operator, "nnls_gram gram_operator"));
    }
    if (options.gram_operator != nullptr &&
        options.gram_operator->cols() != n) {
        throw std::invalid_argument(
            "nnls_gram: gram_operator column count does not match the "
            "Gram system");
    }
    if (options.gram_diagonal_shift < 0.0) {
        throw std::invalid_argument(
            "nnls_gram: negative gram_diagonal_shift");
    }
    DenseGramAccess access{&gram_matrix};
    return nnls_active_set(access, atb, btb, options);
}

NnlsResult nnls_operator(const GramColumnOracle& gram, const Vector& atb,
                         double btb, const NnlsOptions& options) {
    const std::size_t n = atb.size();
    if (gram.dimension != n) {
        throw std::invalid_argument("nnls_operator: dimension mismatch");
    }
    if (!gram.column) {
        throw std::invalid_argument("nnls_operator: null column generator");
    }
    TME_CONTRACT_DBG_CHECK(
        check::finite(atb, "nnls_operator rhs"));
    if (options.gram_operator != nullptr) {
        TME_CONTRACT_DBG_CHECK(check::csr_structure(
            *options.gram_operator, "nnls_operator gram_operator"));
    }
    if (options.gram_operator != nullptr &&
        options.gram_operator->cols() != n) {
        throw std::invalid_argument(
            "nnls_operator: gram_operator column count does not match "
            "the system");
    }
    if (options.gram_diagonal_shift < 0.0) {
        throw std::invalid_argument(
            "nnls_operator: negative gram_diagonal_shift");
    }
    OracleGramAccess access(gram);
    return nnls_active_set(access, atb, btb, options);
}

NnlsResult nnls(const Matrix& a, const Vector& b, const NnlsOptions& options) {
    if (a.rows() != b.size()) {
        throw std::invalid_argument("nnls: dimension mismatch");
    }
    NnlsResult r =
        nnls_gram(gram(a), gemv_transpose(a, b), dot(b, b), options);
    r.residual_norm = nrm2(sub(gemv(a, r.x), b));
    return r;
}

NnlsResult nnls(const SparseMatrix& a, const Vector& b,
                const NnlsOptions& options) {
    if (a.rows() != b.size()) {
        throw std::invalid_argument("nnls: dimension mismatch");
    }
    // The Gram is the operator's own, so the dual refresh can run over
    // A's nonzeros instead of dense Gram rows.
    NnlsOptions sparse_options = options;
    if (sparse_options.gram_operator == nullptr) {
        sparse_options.gram_operator = &a;
    }
    NnlsResult r = nnls_gram(gram_sparse(a), a.multiply_transpose(b),
                             dot(b, b), sparse_options);
    r.residual_norm = nrm2(sub(a.multiply(r.x), b));
    return r;
}

}  // namespace tme::linalg
